package distrib

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"skipper/internal/obsv"
	"skipper/internal/syndex"
	"skipper/internal/track"
)

// resultsEqual compares two per-iteration tracking traces field by field.
func resultsEqual(a, b []track.Result) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Frame != y.Frame || x.Tracking != y.Tracking ||
			x.Vehicles != y.Vehicles || len(x.Marks) != len(y.Marks) {
			return false, fmt.Sprintf("iteration %d: %+v vs %+v", i, x, y)
		}
		for j := range x.Marks {
			if x.Marks[j] != y.Marks[j] {
				return false, fmt.Sprintf("iteration %d mark %d: %+v vs %+v", i, j, x.Marks[j], y.Marks[j])
			}
		}
	}
	return true, ""
}

func trackingSpec(iters int) Spec {
	return Spec{Job: Job{
		Topology: "ring", Procs: 8,
		Width: 128, Height: 128,
		Vehicles: 2, Seed: 21, Iters: iters,
	}}
}

// TestDistributedGoroutineNodesMatchInProcess splits ring(8) across a hub
// and 7 in-process node clients (real localhost TCP, shared address space
// for speed) and requires bit-identical tracking results.
func TestDistributedGoroutineNodesMatchInProcess(t *testing.T) {
	sp := trackingSpec(10)
	memRec, _, err := RunInProcess(sp, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, sp.Procs-1)
	spawn := func(addr string) error {
		for p := 1; p < sp.Procs; p++ {
			go func(p int) {
				errCh <- RunNode(sp, p, addr, time.Minute)
			}(p)
		}
		return nil
	}
	tcpRec, _, err := RunCoordinator(sp, "127.0.0.1:0", spawn, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < sp.Procs; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if ok, diff := resultsEqual(memRec.Results, tcpRec.Results); !ok {
		t.Fatalf("tcp run diverged from in-process run: %s", diff)
	}
}

// TestDistributedOSProcessesMatchInProcess is the full acceptance check:
// the ring(8) tracking schedule runs as 8 OS processes on localhost (this
// test process hosts processor 0 and the hub; 7 spawned skipper-node
// processes host the rest) and must produce bit-identical outputs to the
// in-process backend.
func TestDistributedOSProcessesMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 7 OS processes")
	}
	nodeBin := filepath.Join(t.TempDir(), "skipper-node")
	build := exec.Command("go", "build", "-o", nodeBin, "skipper/cmd/skipper-node")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building skipper-node: %v", err)
	}

	sp := trackingSpec(6)
	memRec, _, err := RunInProcess(sp, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// The acceptance run happens with tracing armed in every process: the
	// distributed executive must stay bit-identical while recording, and the
	// per-process trace files must merge into one deployment trace.
	sp.TraceDir = t.TempDir()
	var children []*exec.Cmd
	spawn := func(addr string) error {
		for p := 1; p < sp.Procs; p++ {
			cmd := exec.Command(nodeBin,
				"-hub", addr,
				"-proc", fmt.Sprint(p),
				"-procs", fmt.Sprint(sp.Procs),
				"-iters", fmt.Sprint(sp.Iters),
				"-size", fmt.Sprint(sp.Width),
				"-vehicles", fmt.Sprint(sp.Vehicles),
				"-seed", fmt.Sprint(sp.Seed),
				"-topology", sp.Topology,
				"-timeout", "1m",
				"-trace", sp.TraceDir,
			)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return err
			}
			children = append(children, cmd)
		}
		return nil
	}
	tcpRec, res, err := RunCoordinator(sp, "127.0.0.1:0", spawn, time.Minute)
	for _, c := range children {
		if werr := c.Wait(); werr != nil && err == nil {
			err = fmt.Errorf("node process %v: %w", c.Args[1:5], werr)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != sp.Procs-1 {
		t.Fatalf("spawned %d node processes, want %d", len(children), sp.Procs-1)
	}
	if ok, diff := resultsEqual(memRec.Results, tcpRec.Results); !ok {
		t.Fatalf("OS-process run diverged from in-process run: %s", diff)
	}
	if res.Messages == 0 {
		t.Fatal("coordinator injected no messages — did the run really distribute?")
	}
	if res.Hops != 0 {
		t.Fatalf("hub relayed %d frames — node↔node traffic must travel the peer mesh", res.Hops)
	}
	tr, err := obsv.LoadDir(sp.TraceDir)
	if err != nil {
		t.Fatalf("merging per-process traces: %v", err)
	}
	if len(tr.Procs) != sp.Procs {
		t.Fatalf("merged trace covers processors %v, want all %d", tr.Procs, sp.Procs)
	}
	if len(tr.Events) == 0 || len(tr.OpSpans()) == 0 {
		t.Fatalf("merged trace is empty (%d events)", len(tr.Events))
	}
}

// TestDistributedChaosWorkerKillMatchesInProcess is the fault-tolerance
// acceptance run: one node of the ring(8) tracking deployment is severed
// mid-run (DieAfterSends: sockets torn, no detach — the cluster-visible
// signature of kill -9) and the surviving 7 processors must finish every
// iteration bit-identical to a healthy in-process run, with the death and
// the re-dispatches visible in the run result and the coordinator trace.
func TestDistributedChaosWorkerKillMatchesInProcess(t *testing.T) {
	runChaosWorkerKill(t, "tcp")
}

// TestChaosWorkerKillMatchesInProcessOverShm reruns the kill over the
// shared-memory data plane: a victim dying mid-ring (its doorbell socket
// torn while its rings may hold half-written records) must be contained
// and re-dispatched exactly like a socket death, with bit-identical output.
func TestChaosWorkerKillMatchesInProcessOverShm(t *testing.T) {
	runChaosWorkerKill(t, "shm")
}

func runChaosWorkerKill(t *testing.T, transport string) {
	t.Helper()
	sp := trackingSpec(8)
	memRec, _, err := RunInProcess(sp, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	s, _, _, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for p := 1; p < sp.Procs; p++ {
		prog := s.Programs[p]
		if len(prog) == 0 {
			continue
		}
		all := true
		for _, op := range prog {
			if op.Kind != syndex.OpWorker {
				all = false
				break
			}
		}
		if all {
			victim = p
			break
		}
	}
	if victim < 0 {
		t.Fatal("tracking schedule maps no worker-only processor onto a node")
	}

	sp.MaxRetries = 2
	sp.Heartbeat = 50 * time.Millisecond
	sp.TraceDir = t.TempDir()
	listen := "127.0.0.1:0"
	if transport != "tcp" {
		var cleanup func()
		var lerr error
		listen, cleanup, lerr = HubListenAddr(transport)
		if lerr != nil {
			t.Fatal(lerr)
		}
		defer cleanup()
		sp.DataPlane = transport
	}
	errCh := make(chan error, sp.Procs-1)
	spawn := func(addr string) error {
		for p := 1; p < sp.Procs; p++ {
			nsp := sp
			nsp.TraceDir = "" // the fault events live on the coordinator's lanes
			if p == victim {
				nsp.DieAfterSends = 2 // dies delivering its third task reply
			}
			go func(p int, nsp Spec) {
				errCh <- RunNode(nsp, p, addr, time.Minute)
			}(p, nsp)
		}
		return nil
	}
	tcpRec, res, err := RunCoordinator(sp, listen, spawn, time.Minute)
	if err != nil {
		t.Fatalf("coordinator did not survive the node kill: %v", err)
	}
	sawKill := false
	for p := 1; p < sp.Procs; p++ {
		nerr := <-errCh
		switch {
		case nerr == nil:
		case errors.Is(nerr, ErrChaosKilled):
			sawKill = true
		default:
			t.Fatalf("surviving node failed: %v", nerr)
		}
	}
	if !sawKill {
		t.Fatal("chaos trigger never fired — the victim outlived the run")
	}
	if ok, diff := resultsEqual(memRec.Results, tcpRec.Results); !ok {
		t.Fatalf("degraded run diverged from the healthy in-process run: %s", diff)
	}
	if res.Failures < 1 {
		t.Fatalf("Failures = %d, want >= 1", res.Failures)
	}
	if res.Redispatches < 1 {
		t.Fatalf("Redispatches = %d, want >= 1", res.Redispatches)
	}
	tr, err := obsv.LoadDir(sp.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	var sawDown, sawRedispatch bool
	for _, ev := range tr.Events {
		switch ev.Kind {
		case obsv.EvPeerDown:
			sawDown = sawDown || int(ev.Proc) == victim
		case obsv.EvRedispatch:
			sawRedispatch = true
		}
	}
	if !sawDown || !sawRedispatch {
		t.Fatalf("trace lacks fault events: peer-down(victim)=%v redispatch=%v", sawDown, sawRedispatch)
	}
}

// TestNodeRejectsCoordinatorProcessor pins the processor-0 ownership rule.
func TestNodeRejectsCoordinatorProcessor(t *testing.T) {
	sp := trackingSpec(1)
	if err := RunNode(sp, 0, "127.0.0.1:1", time.Second); err == nil {
		t.Fatal("node accepted processor 0")
	}
	if err := RunNode(sp, sp.Procs, "127.0.0.1:1", time.Second); err == nil {
		t.Fatal("node accepted out-of-range processor")
	}
}
