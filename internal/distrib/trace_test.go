package distrib

import (
	"testing"
	"time"

	"skipper/internal/obsv"
)

// runTraced executes the tracking spec with tracing armed on the named
// transport (mem = one in-process machine; tcp/unix/shm = hub plus
// in-process goroutine node clients over real sockets on the named data
// plane, each process-alike writing its own trace file), optionally with
// the itermem loop software-pipelined at full depth, and returns the
// merged deployment trace.
func runTraced(t *testing.T, transport string, iters int, pipeline bool) *obsv.Trace {
	t.Helper()
	sp := trackingSpec(iters)
	sp.TraceDir = t.TempDir()
	// Full depth: PipelineDepth 0 cuts at every farm boundary, the maximum
	// stage count the schedule admits (DESIGN.md §14).
	sp.Pipeline = pipeline
	switch transport {
	case "mem":
		if _, _, err := RunInProcess(sp, time.Minute); err != nil {
			t.Fatal(err)
		}
	case "tcp", "unix", "shm":
		listen := "127.0.0.1:0"
		if transport != "tcp" {
			var cleanup func()
			var lerr error
			listen, cleanup, lerr = HubListenAddr(transport)
			if lerr != nil {
				t.Fatal(lerr)
			}
			defer cleanup()
			sp.DataPlane = transport
		}
		errCh := make(chan error, sp.Procs-1)
		spawn := func(addr string) error {
			for p := 1; p < sp.Procs; p++ {
				go func(p int) {
					errCh <- RunNode(sp, p, addr, time.Minute)
				}(p)
			}
			return nil
		}
		if _, _, err := RunCoordinator(sp, listen, spawn, time.Minute); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < sp.Procs; i++ {
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		}
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	tr, err := obsv.LoadDir(sp.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceCompleteness is the event-pairing gate across every data plane
// and under full-depth pipelining: in a clean run every recorded send must
// have a matching receive (same message key, transport-wide) and every
// op-start a matching op-end — nothing the executive injected may vanish
// from the trace.
func TestTraceCompleteness(t *testing.T) {
	cases := []struct {
		name      string
		transport string
		pipeline  bool
	}{
		{"mem", "mem", false},
		{"tcp", "tcp", false},
		{"unix", "unix", false},
		{"shm", "shm", false},
		{"mem-pipeline", "mem", true},
		{"shm-pipeline", "shm", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := runTraced(t, tc.transport, 6, tc.pipeline)
			if len(tr.Events) == 0 {
				t.Fatal("trace is empty")
			}
			if tr.Dropped != 0 {
				t.Fatalf("%d events dropped to ring wrap; completeness unverifiable", tr.Dropped)
			}

			sends := map[string]int{}
			recvs := map[string]int{}
			starts := map[string]int{}
			ends := map[string]int{}
			var nAbort int
			for _, ev := range tr.Events {
				l := tr.Label(ev.Label)
				switch ev.Kind {
				case obsv.EvSend:
					sends[l]++
				case obsv.EvRecv:
					recvs[l]++
				case obsv.EvOpStart:
					starts[l]++
				case obsv.EvOpEnd:
					ends[l]++
				case obsv.EvAbort:
					nAbort++
				}
			}
			if nAbort != 0 {
				t.Fatalf("clean run recorded %d abort events", nAbort)
			}
			if len(sends) == 0 || len(starts) == 0 {
				t.Fatalf("trace has %d send keys, %d op labels; instrumentation missing a layer", len(sends), len(starts))
			}
			for l, n := range sends {
				if recvs[l] != n {
					t.Errorf("key %s: %d sends but %d recvs", l, n, recvs[l])
				}
			}
			for l, n := range recvs {
				if sends[l] != n {
					t.Errorf("key %s: %d recvs but %d sends", l, n, sends[l])
				}
			}
			for l, n := range starts {
				if ends[l] != n {
					t.Errorf("op %s: %d starts but %d ends", l, n, ends[l])
				}
			}
			spans := tr.OpSpans()
			var nStarts int
			for _, n := range starts {
				nStarts += n
			}
			if len(spans) != nStarts {
				t.Errorf("paired %d op spans from %d starts", len(spans), nStarts)
			}
			if tc.pipeline {
				var nHand int
				for _, ev := range tr.Events {
					if ev.Kind == obsv.EvStageHand {
						nHand++
					}
				}
				if nHand == 0 {
					t.Error("pipelined run recorded no stage hand-off events")
				}
			}
		})
	}
}

// TestTracedRunsStayIdentical pins that arming the recorder does not
// perturb the computation: traced mem and tcp runs still produce
// bit-identical tracking results.
func TestTracedRunsStayIdentical(t *testing.T) {
	sp := trackingSpec(6)
	plainRec, _, err := RunInProcess(sp, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	traced := sp
	traced.TraceDir = t.TempDir()
	tracedRec, _, err := RunInProcess(traced, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := resultsEqual(plainRec.Results, tracedRec.Results); !ok {
		t.Fatalf("tracing perturbed the computation: %s", diff)
	}
}

// TestSpecMetaRoundTrip pins that a trace carries enough metadata to
// recompile the deployment it was recorded under (skipper-trace -compare).
func TestSpecMetaRoundTrip(t *testing.T) {
	sp := trackingSpec(4)
	sp.Deterministic = true
	got, err := SpecFromMeta(sp.traceMeta())
	if err != nil {
		t.Fatal(err)
	}
	want := sp // TraceDir/DebugAddr are process-local and not in the meta
	if got != want {
		t.Fatalf("meta round trip: %+v != %+v", got, want)
	}
	if _, err := SpecFromMeta(nil); err == nil {
		t.Fatal("empty meta accepted")
	}
	if _, err := SpecFromMeta(map[string]string{"app": "other"}); err == nil {
		t.Fatal("foreign app meta accepted")
	}
}
