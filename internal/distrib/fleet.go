// Fleet protocol: the control channel between skipper-serve's scheduler and
// its workers. It is deliberately not the frame wire — newline-delimited
// JSON over one TCP (or unix-domain) connection per worker, a few messages
// per job — because fleet membership changes at human timescales while
// frames move at microsecond ones. A worker joins once and then serves any
// number of job assignments; each assignment makes the worker dial the
// fleet hub's *data* listener under the job's salted fingerprint, so job
// traffic rides the existing nettransport sessions and never touches this
// channel.
//
//	worker → serve: {"type":"join","name":"w1"}
//	serve  → worker: {"type":"welcome"}
//	serve  → worker: {"type":"run","job":"j3","salt":...,"procs":[2,5],
//	                  "hub":"127.0.0.1:9000","spec":{...Job...},...}
//	worker → serve: {"type":"done","job":"j3","error":""}
//	worker → serve: {"type":"ping"}        (liveness, every second)
//	worker → serve: {"type":"leave"}       (clean departure)
//	serve  → worker: {"type":"stop"}       (control plane shutting down)
package distrib

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/exec"
	"skipper/internal/exec/nettransport"
	"skipper/internal/obsv"
)

// Fleet message types.
const (
	MsgJoin    = "join"
	MsgWelcome = "welcome"
	MsgRun     = "run"
	MsgDone    = "done"
	MsgPing    = "ping"
	MsgLeave   = "leave"
	MsgStop    = "stop"
)

// FleetPingInterval is how often an idle worker proves liveness.
const FleetPingInterval = time.Second

// FleetMsg is one line of the fleet protocol. Durations travel as
// milliseconds so the JSON stays tool-friendly.
type FleetMsg struct {
	Type string `json:"type"`
	// Name identifies the worker (join/leave).
	Name string `json:"name,omitempty"`
	// JobID names the job an assignment or completion belongs to.
	JobID string `json:"job,omitempty"`
	// Salt XORs into the schedule fingerprint to namespace the job's
	// session on the shared fleet hub.
	Salt uint64 `json:"salt,omitempty"`
	// Procs are the deployment processors this worker must host for the job.
	Procs []int `json:"procs,omitempty"`
	// HubAddr is the fleet hub's data/control listener the worker dials.
	HubAddr string `json:"hub,omitempty"`
	// Job is the deployment agreement, shipped verbatim from the submitter.
	Job *Job `json:"spec,omitempty"`
	// Executive tuning the whole deployment must agree on.
	MaxRetries       int   `json:"maxRetries,omitempty"`
	TaskDeadlineMS   int64 `json:"taskDeadlineMs,omitempty"`
	HeartbeatMS      int64 `json:"heartbeatMs,omitempty"`
	SpeculateAfterMS int64 `json:"speculateAfterMs,omitempty"`
	TimeoutMS        int64 `json:"timeoutMs,omitempty"`
	// Error reports a failed assignment (done messages).
	Error string `json:"error,omitempty"`
	// Trace is a traced assignment's event snapshot, shipped back with the
	// done message (Job.Trace set) so the control plane can merge every
	// worker's timeline into the job's clock-aligned trace. Done messages
	// echo Salt so the control plane can attribute the snapshot to the
	// right attempt of a requeued job.
	Trace *obsv.Trace `json:"trace,omitempty"`
}

// splitFleetAddr mirrors the nettransport address scheme: "unix:"-prefixed
// means a unix-domain socket path, anything else TCP.
func splitFleetAddr(addr string) (network, address string) {
	if strings.HasPrefix(addr, "unix:") {
		return "unix", strings.TrimPrefix(addr, "unix:")
	}
	return "tcp", addr
}

// Worker is one fleet member: a process (or goroutine, in tests) that has
// joined a skipper-serve control plane and executes job assignments in a
// loop — the long-lived counterpart of the one-shot RunNode. Assignments
// run concurrently: a worker hosts processors of several jobs at once, each
// over its own fingerprint-salted session.
type Worker struct {
	name string
	conn net.Conn
	dec  *json.Decoder

	encMu sync.Mutex
	enc   *json.Encoder

	mu      sync.Mutex
	active  map[string]*nettransport.Client // job id → its session transport
	jobRecs map[string]*obsv.Recorder       // job id → traced assignment's recorder
	killed  bool

	// flight, when armed (EnableFlight), is the worker's always-on flight
	// recorder: untraced assignments record into its bounded ring, and any
	// fault auto-dumps a trace artifact.
	flight *obsv.Flight

	closing  atomic.Bool
	jobWG    sync.WaitGroup
	pingStop chan struct{}
	pingOnce sync.Once
}

// JoinFleet dials the control plane at addr, retrying until d elapses
// (workers may start before skipper-serve binds), and registers under name
// (defaulting to host-pid). The returned worker serves assignments once
// Serve is called.
func JoinFleet(addr, name string, d time.Duration) (*Worker, error) {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	network, address := splitFleetAddr(addr)
	deadline := time.Now().Add(d)
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout(network, address, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distrib: joining fleet %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	w := &Worker{
		name:     name,
		conn:     c,
		dec:      json.NewDecoder(c),
		enc:      json.NewEncoder(c),
		active:   map[string]*nettransport.Client{},
		jobRecs:  map[string]*obsv.Recorder{},
		pingStop: make(chan struct{}),
	}
	if err := w.send(FleetMsg{Type: MsgJoin, Name: name}); err != nil {
		c.Close()
		return nil, fmt.Errorf("distrib: fleet join: %w", err)
	}
	var welcome FleetMsg
	if err := w.dec.Decode(&welcome); err != nil {
		c.Close()
		return nil, fmt.Errorf("distrib: fleet join: %w", err)
	}
	if welcome.Type != MsgWelcome {
		c.Close()
		if welcome.Error != "" {
			return nil, fmt.Errorf("distrib: fleet join rejected: %s", welcome.Error)
		}
		return nil, fmt.Errorf("distrib: fleet join: unexpected %q reply", welcome.Type)
	}
	return w, nil
}

// Name is the worker's fleet registration name.
func (w *Worker) Name() string { return w.name }

// EnableFlight arms the worker's always-on flight recorder: every
// assignment's executive and transport events land in a bounded ring at all
// times, and any fault — peer-down, redispatch, degrade, cancel, abort —
// auto-dumps the last few seconds as a trace artifact under dir. Idempotent;
// an empty dir leaves the flight unarmed.
func (w *Worker) EnableFlight(dir string) {
	if dir == "" || w.flight != nil {
		return
	}
	w.flight = obsv.NewFlight(dir, w.name, obsv.FlightOptions{
		Procs: 16, // spread arbitrary assignments' proc IDs across rings
		Extra: w.activeTraces,
	})
}

// Flight exposes the worker's flight recorder (nil unless EnableFlight ran).
func (w *Worker) Flight() *obsv.Flight { return w.flight }

// flightRecorder is the ring untraced assignments record into.
func (w *Worker) flightRecorder() *obsv.Recorder {
	if w.flight == nil {
		return nil
	}
	return w.flight.Recorder()
}

// flightTrigger routes a traced assignment's fault hook into the flight's
// rate-limited dump path, so faults auto-dump even when the assignment
// records into its own dedicated ring instead of the flight ring.
func (w *Worker) flightTrigger(k obsv.EventKind) {
	if w.flight != nil {
		w.flight.Trigger(k)
	}
}

// activeTraces snapshots the traced assignments' recorders at dump time so a
// fault artifact carries their timelines alongside the flight ring. These
// are best-effort mid-run snapshots: an event being stored concurrently may
// be missed, which is fine for a post-mortem artifact.
func (w *Worker) activeTraces() []*obsv.Trace {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []*obsv.Trace
	for _, r := range w.jobRecs {
		out = append(out, r.Snapshot())
	}
	return out
}

func (w *Worker) send(msg FleetMsg) error {
	w.encMu.Lock()
	defer w.encMu.Unlock()
	return w.enc.Encode(msg)
}

func (w *Worker) stopPing() {
	w.pingOnce.Do(func() { close(w.pingStop) })
}

func (w *Worker) pingLoop() {
	t := time.NewTicker(FleetPingInterval)
	defer t.Stop()
	for {
		select {
		case <-w.pingStop:
			return
		case <-t.C:
		}
		if w.closing.Load() {
			return
		}
		w.send(FleetMsg{Type: MsgPing, Name: w.name})
	}
}

// Serve executes job assignments until the control plane sends stop, Leave
// or Kill is called, or the connection drops (a dead control plane). Each
// run message starts a goroutine: assignments for different jobs overlap.
func (w *Worker) Serve() error {
	go w.pingLoop()
	for {
		var msg FleetMsg
		if err := w.dec.Decode(&msg); err != nil {
			w.stopPing()
			w.jobWG.Wait()
			if w.closing.Load() {
				return nil
			}
			return fmt.Errorf("distrib: fleet connection lost: %w", err)
		}
		switch msg.Type {
		case MsgRun:
			w.jobWG.Add(1)
			go func(m FleetMsg) {
				defer w.jobWG.Done()
				w.runAssignment(m)
			}(msg)
		case MsgStop:
			w.closing.Store(true)
			w.stopPing()
			w.jobWG.Wait()
			return nil
		}
	}
}

// Leave departs cleanly: the control plane unregisters the worker instead
// of declaring it dead.
func (w *Worker) Leave() error {
	w.closing.Store(true)
	w.stopPing()
	w.send(FleetMsg{Type: MsgLeave, Name: w.name})
	return w.conn.Close()
}

// Kill tears the worker down the way kill -9 would: the fleet connection
// and every active job session are severed abruptly, no detach, no done
// messages — the in-process stand-in for killing a worker process in
// chaos and equivalence tests.
func (w *Worker) Kill() {
	w.closing.Store(true)
	w.stopPing()
	w.mu.Lock()
	w.killed = true
	cls := make([]*nettransport.Client, 0, len(w.active))
	for _, cl := range w.active {
		cls = append(cls, cl)
	}
	w.mu.Unlock()
	w.conn.Close()
	for _, cl := range cls {
		cl.Sever()
	}
}

// runAssignment executes one job assignment and reports the outcome. The
// done message echoes the assignment's salt (attempt identity) and, for a
// traced job, carries the worker's event snapshot home.
func (w *Worker) runAssignment(m FleetMsg) {
	tr, err := w.execute(m)
	done := FleetMsg{Type: MsgDone, JobID: m.JobID, Name: w.name, Salt: m.Salt, Trace: tr}
	if err != nil {
		done.Error = err.Error()
	}
	w.send(done) // best effort: the control plane may be gone
}

// execute is the worker-side job lifecycle: compile the shipped Job, dial
// the fleet hub under the salted fingerprint claiming the assigned
// processors, run their op programs, detach. It is RunProcs with the
// session transport registered on the worker so Kill can sever mid-run.
// For a traced job it returns the assignment's event snapshot.
func (w *Worker) execute(m FleetMsg) (*obsv.Trace, error) {
	if m.Job == nil {
		return nil, errors.New("distrib: run message without job spec")
	}
	if m.HubAddr == "" {
		return nil, errors.New("distrib: run message without hub address")
	}
	sp := Spec{
		Job:            *m.Job,
		MaxRetries:     m.MaxRetries,
		TaskDeadline:   time.Duration(m.TaskDeadlineMS) * time.Millisecond,
		Heartbeat:      time.Duration(m.HeartbeatMS) * time.Millisecond,
		SpeculateAfter: time.Duration(m.SpeculateAfterMS) * time.Millisecond,
	}
	timeout := time.Duration(m.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	s, reg, _, err := sp.Compile()
	if err != nil {
		return nil, err
	}
	if len(m.Procs) == 0 {
		return nil, errors.New("distrib: run message assigns no processors")
	}
	local := make([]arch.ProcID, len(m.Procs))
	for i, p := range m.Procs {
		if p <= 0 || p >= s.Arch.N {
			return nil, fmt.Errorf("distrib: assigned processor %d outside 1..%d", p, s.Arch.N-1)
		}
		local[i] = arch.ProcID(p)
	}
	// A traced job records into its own full-size ring whose snapshot ships
	// home; an untraced one records into the bounded always-on flight ring.
	// Either way the fault hook routes through the flight's dump path, and
	// the recorder rides the dial (WithTrace) so it is armed before the
	// session's first inbound frame — a post-Dial SetTrace can lose the
	// initial task dispatch to the arming race.
	var jrec *obsv.Recorder
	rec := w.flightRecorder()
	if sp.Trace {
		jrec = obsv.NewRecorder(s.Arch.N, 0)
		jrec.SetFaultHook(w.flightTrigger)
		w.mu.Lock()
		w.jobRecs[m.JobID] = jrec
		w.mu.Unlock()
		defer func() {
			w.mu.Lock()
			delete(w.jobRecs, m.JobID)
			w.mu.Unlock()
		}()
		rec = jrec
	}
	cl, err := nettransport.Dial(m.HubAddr, s.Fingerprint()^m.Salt, local, 30*time.Second,
		append(sp.netOptions(), nettransport.WithTrace(rec))...)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		cl.Sever()
		return nil, errors.New("distrib: worker killed")
	}
	w.active[m.JobID] = cl
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.active, m.JobID)
		killed := w.killed
		w.mu.Unlock()
		if !killed {
			cl.Close()
		}
	}()
	mach := exec.NewMachineOn(s, reg, cl, local)
	mach.DeterministicFarm = sp.Deterministic
	mach.FT = sp.ft()
	mach.Pipeline = sp.Pipeline
	mach.PipelineDepth = sp.PipelineDepth
	mach.Trace = rec
	res, runErr := mach.RunWithTimeout(sp.Iters, timeout)
	if jrec == nil {
		return nil, runErr
	}
	var tr *obsv.Trace
	if res != nil && res.Trace != nil {
		tr = res.Trace
	} else {
		tr = jrec.Snapshot()
	}
	if len(tr.Procs) == 0 {
		tr.Procs = m.Procs
	}
	tr.ClockOffsetNS = cl.ClockOffsetNS()
	tr.Meta = sp.traceMeta()
	tr.Meta["worker"] = w.name
	return tr, runErr
}

// RunWorker is the whole lifecycle of one fleet worker process: join the
// control plane at addr and serve job assignments until it stops or
// disappears. The long-lived sibling of RunNode, used by
// `skipper-node -fleet`. flightDir arms the always-on flight recorder
// (empty disables it); fault artifacts land there.
func RunWorker(addr, name string, d time.Duration, flightDir string) error {
	w, err := JoinFleet(addr, name, d)
	if err != nil {
		return err
	}
	w.EnableFlight(flightDir)
	if w.flight != nil {
		defer w.flight.Close()
	}
	return w.Serve()
}
