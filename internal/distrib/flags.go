package distrib

import (
	"flag"
	"time"
)

// Flags is the one declaration of the deployment and runtime flags every
// skipper command shares. skipper-run, skipper-node and skipper-serve used
// to (or would) declare these independently, and the copies drifted —
// skipper-run lost -deterministic while skipper-node kept it. Each command
// calls FlagSet on its own flag.FlagSet, adds its command-specific flags
// (-transport, -hub, -proc, -fleet, ...) and assembles the Spec with Spec().
type Flags struct {
	Topology      *string
	Procs         *int
	Iters         *int
	Size          *int
	Vehicles      *int
	Seed          *int64
	Deterministic *bool
	Pipeline      *bool
	PipelineDepth *int
	DataPlane     *string
	Trace         *string
	DebugAddr     *string
	*ExecFlags
}

// ExecFlags is the executive-tuning subset every command shares, including
// skipper-serve (which takes no deployment flags — jobs arrive over HTTP —
// but still configures fault tolerance and heartbeats fleet-wide).
type ExecFlags struct {
	MaxRetries     *int
	TaskDeadline   *time.Duration
	Heartbeat      *time.Duration
	SpeculateAfter *time.Duration
}

// ExecFlagSet declares the executive-tuning flags on fs.
func ExecFlagSet(fs *flag.FlagSet) *ExecFlags {
	f := &ExecFlags{}
	f.MaxRetries = fs.Int("max-retries", 0, "farm fault tolerance: re-dispatch a dead worker's tasks up to this many times (0 disables)")
	f.TaskDeadline = fs.Duration("task-deadline", 0, "declare a worker dead when a farm task sits unanswered this long (0 disables)")
	f.Heartbeat = fs.Duration("heartbeat", 0, "control-plane liveness heartbeat interval, same value on every process (0 disables)")
	f.SpeculateAfter = fs.Duration("speculate-after", 0, "duplicate a farm task onto an idle worker when it sits unanswered this long (0 = task-deadline/2 when a deadline is set; negative disables; needs -max-retries > 0)")
	return f
}

// FlagSet declares the shared flags on fs and returns their destinations.
func FlagSet(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.Topology = fs.String("topology", "ring", "ring, chain, star or full")
	f.Procs = fs.Int("procs", 8, "number of processors (and df workers)")
	f.Iters = fs.Int("iters", 50, "stream iterations")
	f.Size = fs.Int("size", 512, "frame width and height")
	f.Vehicles = fs.Int("vehicles", 3, "lead vehicles (1-3)")
	f.Seed = fs.Int64("seed", 3, "synthetic scene seed")
	f.Deterministic = fs.Bool("deterministic", false, "order-insensitive farm accumulation, same value on every process")
	f.Pipeline = fs.Bool("pipeline", false, "software-pipeline the itermem loop (overlap frame k+1's grab with frame k's farm), same value on every process")
	f.PipelineDepth = fs.Int("pipeline-depth", 0, "with -pipeline: cap the pipeline at this many stages (0 = cut at every farm boundary, 2 = the historical two-stage split)")
	f.DataPlane = fs.String("data-plane", "", "node data plane: tcp, unix or shm (default: inferred from the control connection's locality)")
	f.Trace = fs.String("trace", "", "trace directory: record an event trace and export its artifacts there")
	f.DebugAddr = fs.String("debug-addr", "", "serve /metrics, /healthz and /varz on this address")
	f.ExecFlags = ExecFlagSet(fs)
	return f
}

// Spec assembles the parsed flag values into a deployment spec.
func (f *Flags) Spec() Spec {
	return Spec{
		Job: Job{
			Topology: *f.Topology, Procs: *f.Procs,
			Width: *f.Size, Height: *f.Size,
			Vehicles: *f.Vehicles, Seed: *f.Seed, Iters: *f.Iters,
			Deterministic: *f.Deterministic, Pipeline: *f.Pipeline,
			PipelineDepth: *f.PipelineDepth,
		},
		DataPlane: *f.DataPlane,
		TraceDir:  *f.Trace, DebugAddr: *f.DebugAddr,
		MaxRetries: *f.MaxRetries, TaskDeadline: *f.TaskDeadline,
		Heartbeat: *f.Heartbeat, SpeculateAfter: *f.SpeculateAfter,
	}
}
