// Package distrib runs the built-in tracking application as a multi-process
// deployment: one coordinator process hosting processor 0 (and the TCP hub)
// plus one skipper-node process per remaining processor. Every process
// compiles the same specification from the same Spec — the hub's handshake
// fingerprint check proves they agree — and then runs its share of the
// executive over the nettransport backend. The stateful extern functions
// (frame grabber, recorder) are instantiated per process but each is only
// ever invoked on the processor hosting its node, so the distributed run is
// bit-identical to the in-process one.
package distrib

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/exec/faulttransport"
	"skipper/internal/exec/memtransport"
	"skipper/internal/exec/nettransport"
	"skipper/internal/exec/transport"
	"skipper/internal/expand"
	"skipper/internal/syndex"
	"skipper/internal/track"
	"skipper/internal/value"
	"skipper/internal/video"
)

// Job is the deployment agreement: everything every process of one
// deployment must hold identically, and nothing else. The schedule
// fingerprint covers the compiled program and architecture; the scene
// parameters are carried alongside so every process synthesizes the same
// video stream. Job is also the wire currency of the service control plane
// — a `POST /jobs` body on skipper-serve is exactly this struct, and the
// scheduler ships it verbatim to the workers it places the job on — hence
// the JSON tags.
type Job struct {
	Topology string `json:"topology"` // ring, chain, star or full
	Procs    int    `json:"procs"`
	Width    int    `json:"width"`
	Height   int    `json:"height"`
	Vehicles int    `json:"vehicles"`
	Seed     int64  `json:"seed"`
	Iters    int    `json:"iters"`
	// Deterministic selects order-insensitive df accumulation buffering.
	Deterministic bool `json:"deterministic,omitempty"`
	// Pipeline software-pipelines the itermem loop (DESIGN.md §12): frame
	// k+1's grab/preprocessing overlaps frame k's farm and merge on
	// processors whose program splits cleanly. Outputs stay bit-identical,
	// so it is executive tuning like Deterministic: not part of the
	// schedule fingerprint, but every process of a deployment must run the
	// same value so the chronograms line up — which is what makes it job
	// description rather than per-process config.
	Pipeline bool `json:"pipeline,omitempty"`
	// PipelineDepth caps the pipeline's stage count (DESIGN.md §14):
	// 0 or 1 cuts at every farm boundary, 2 restores the historical
	// front/back split. Job description for the same reason Pipeline is.
	PipelineDepth int `json:"pipelineDepth,omitempty"`
	// Trace arms job-scoped event tracing on every process of the
	// deployment: workers record their assignment's executive and
	// transport events into a dedicated full-size ring and ship the
	// snapshot back with the done message, and the serve hub keeps its own
	// per-attempt recorder, so `GET /jobs/{id}/trace` serves the merged
	// clock-aligned timeline. Executive tuning like Pipeline: not part of
	// the schedule fingerprint.
	Trace bool `json:"trace,omitempty"`
	// SpeculateAfterMS overrides the fleet's straggler-speculation threshold
	// (DESIGN.md §16) for this job, in milliseconds: positive duplicates a
	// task onto an idle worker once it has sat unanswered that long,
	// negative disables speculation for the job, zero inherits the fleet
	// default (the -speculate-after flag, or TaskDeadline/2). Executive
	// tuning like Pipeline: not part of the schedule fingerprint, but the
	// master's dispatch behavior, hence job description.
	SpeculateAfterMS int64 `json:"speculateAfterMs,omitempty"`
}

// Spec is one process's full view of a deployment: the shared Job plus the
// fleet/runtime configuration that is free to differ per process (tracing,
// debug endpoints) or that tunes the executive fleet-wide (fault tolerance,
// heartbeats) without entering the job description.
type Spec struct {
	Job

	// TraceDir and DebugAddr are per-process local configuration, not part
	// of the deployment agreement: they do not enter the schedule
	// fingerprint, and each process of one deployment may set them
	// differently (or not at all). TraceDir, when non-empty, arms event
	// tracing and writes this process's trace file there after the run;
	// DebugAddr, when non-empty, serves /metrics, /healthz and /varz on
	// that address for the run's duration.
	TraceDir  string
	DebugAddr string

	// Fault tolerance (DESIGN.md §11). MaxRetries > 0 enables farm task
	// re-dispatch: a worker processor's death re-enqueues its in-flight
	// tasks on survivors, each task surviving at most MaxRetries losses.
	// TaskDeadline, when positive, additionally declares a worker dead when
	// a task sits unanswered that long (catching hangs no transport error
	// reveals). Heartbeat arms control-plane liveness probes at that
	// interval — pass the same value to every process, like the topology.
	// SpeculateAfter is the fleet-wide straggler-speculation threshold
	// (DESIGN.md §16): positive duplicates a task onto an idle worker once
	// it has sat unanswered that long, zero defaults to TaskDeadline/2 when
	// a deadline is armed, negative disables. Job.SpeculateAfterMS, when
	// non-zero, overrides it per job.
	// None of these enter the schedule fingerprint: they tune the
	// executive, not the compiled deployment.
	MaxRetries     int
	TaskDeadline   time.Duration
	Heartbeat      time.Duration
	SpeculateAfter time.Duration

	// DieAfterSends is the chaos knob: when positive on a node process,
	// its transport is severed — no detach, sockets torn mid-frame, the
	// observable signature of kill -9 — once the node has sent that many
	// frames. The node's run then fails with ErrChaosKilled while the rest
	// of the cluster must carry on (or abort cleanly, without MaxRetries).
	DieAfterSends int

	// SlowEveryNth/SlowFor are the straggler chaos knobs: every Nth frame
	// this node process sends is delayed by SlowFor on the sending
	// goroutine — scripted slow compute, the scenario speculation exists
	// for. Unlike DieAfterSends the node stays alive and must finish clean.
	SlowEveryNth int
	SlowFor      time.Duration

	// DataPlane pins the node-side data plane ("tcp", "unix", "shm";
	// empty = the transport's "auto" inference). "shm" is the same-host
	// shared-memory slab ring (DESIGN.md §14): frames move through mmap'd
	// per-connection rings and the sockets degrade to doorbells. Not part
	// of the schedule fingerprint — it tunes how frames travel, never what
	// they say.
	DataPlane string
}

// ErrChaosKilled marks a node run that ended because its own DieAfterSends
// trigger fired — the expected casualty of a chaos drill, not a fault.
var ErrChaosKilled = errors.New("distrib: node severed by chaos injection")

// HubListenAddr returns a hub bind address for the named multi-process
// transport kind: "tcp" picks a free localhost port, "unix" and "shm" a
// fresh unix-domain socket path (on the shm plane the socket remains the
// handshake/doorbell channel; the rings are minted per connection). The
// path comes from nettransport.ShortSockPath, never a MkdirTemp tree: a
// deep $TMPDIR used to push the path past the kernel's 104/108-byte
// sun_path limit and the bind failed (or silently truncated) — hashed
// short basenames keep it in bounds regardless of environment. The
// cleanup func removes anything the address reserved on disk; call it
// after the hub has closed.
func HubListenAddr(transport string) (listen string, cleanup func(), err error) {
	switch transport {
	case "tcp":
		return "127.0.0.1:0", func() {}, nil
	case "unix", "shm":
		path := nettransport.ShortSockPath("skipper-hub")
		return "unix:" + path, func() { os.Remove(path) }, nil
	}
	return "", nil, fmt.Errorf("distrib: unknown transport %q", transport)
}

// Validate rejects job descriptions no deployment could run — the
// admission check the service control plane applies before queueing.
func (j Job) Validate() error {
	switch j.Topology {
	case "ring", "chain", "star", "full":
	default:
		return fmt.Errorf("distrib: unknown topology %q", j.Topology)
	}
	if j.Procs < 1 {
		return fmt.Errorf("distrib: procs %d, want >= 1", j.Procs)
	}
	if j.Width < 8 || j.Height < 8 {
		return fmt.Errorf("distrib: frame %dx%d too small (want >= 8x8)", j.Width, j.Height)
	}
	if j.Iters < 1 {
		return fmt.Errorf("distrib: iters %d, want >= 1", j.Iters)
	}
	return nil
}

// Arch builds the architecture graph the job names.
func (j Job) Arch() (*arch.Arch, error) {
	switch j.Topology {
	case "ring":
		return arch.Ring(j.Procs), nil
	case "chain":
		return arch.Chain(j.Procs), nil
	case "star":
		return arch.Star(j.Procs), nil
	case "full":
		return arch.Full(j.Procs), nil
	}
	return nil, fmt.Errorf("distrib: unknown topology %q", j.Topology)
}

// Compile builds this process's instance of the deployment: a fresh scene
// and registry plus the mapped schedule. Every process of a deployment
// calls this with the same Job and obtains a schedule with the same
// fingerprint.
func (j Job) Compile() (*syndex.Schedule, *value.Registry, *track.Recorder, error) {
	a, err := j.Arch()
	if err != nil {
		return nil, nil, nil, err
	}
	scene := video.NewScene(j.Width, j.Height, j.Vehicles, j.Seed)
	reg, rec := track.NewRegistry(scene, nil)
	prog, err := parser.Parse(track.ProgramSource(j.Procs, j.Width, j.Height))
	if err != nil {
		return nil, nil, nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := syndex.Map(res.Graph, a, reg, syndex.Structured)
	if err != nil {
		return nil, nil, nil, err
	}
	return s, reg, rec, nil
}

// netOptions collects the transport options the spec implies.
func (sp Spec) netOptions() []nettransport.Option {
	var opts []nettransport.Option
	if sp.Heartbeat > 0 {
		opts = append(opts, nettransport.WithHeartbeat(sp.Heartbeat))
	}
	if sp.DataPlane != "" {
		opts = append(opts, nettransport.WithDataPlane(sp.DataPlane))
	}
	return opts
}

// ft is the executive fault-tolerance policy the spec implies: the fleet's
// flags, with the job's own speculation override winning when set.
func (sp Spec) ft() exec.FaultTolerance {
	speculate := sp.SpeculateAfter
	if ms := sp.Job.SpeculateAfterMS; ms != 0 {
		speculate = time.Duration(ms) * time.Millisecond
	}
	return exec.FaultTolerance{
		MaxRetries:     sp.MaxRetries,
		TaskDeadline:   sp.TaskDeadline,
		SpeculateAfter: speculate,
	}
}

// FT exposes the resolved fault-tolerance policy for embedders (the serve
// control plane builds its machines by hand but must agree with the nodes).
func (sp Spec) FT() exec.FaultTolerance { return sp.ft() }

// RunNode is the whole lifecycle of one node process: compile the spec,
// dial the hub claiming proc, run the processor's program and detach. Used
// by cmd/skipper-node and, in-process, by tests.
func RunNode(sp Spec, proc int, hubAddr string, d time.Duration) error {
	return RunProcs(sp, []int{proc}, hubAddr, 0, d)
}

// RunProcs is RunNode generalized for an elastic fleet: one worker process
// hosting any subset of a deployment's processors (a 4-worker fleet can run
// an 8-processor schedule at 2 processors per worker), attaching under the
// schedule fingerprint XOR salt. The salt is the scheduler's session
// namespace — it lets two concurrent submissions of an identical job hold
// distinct sessions on one fleet hub — and must be 0 for classic one-job
// deployments, where the fingerprint alone is the agreement.
func RunProcs(sp Spec, procs []int, hubAddr string, salt uint64, d time.Duration) error {
	s, reg, _, err := sp.Compile()
	if err != nil {
		return err
	}
	if len(procs) == 0 {
		return fmt.Errorf("distrib: no processors to host")
	}
	local := make([]arch.ProcID, len(procs))
	for i, p := range procs {
		if p <= 0 || p >= s.Arch.N {
			return fmt.Errorf("distrib: node processor %d outside 1..%d (0 is the coordinator)", p, s.Arch.N-1)
		}
		local[i] = arch.ProcID(p)
	}
	trec := sp.newRecorder()
	cl, err := nettransport.Dial(hubAddr, s.Fingerprint()^salt, local, d,
		append(sp.netOptions(), nettransport.WithTrace(trec))...)
	if err != nil {
		return err
	}
	defer cl.Close()
	var tr transport.Transport = cl
	var killed atomic.Bool
	fault := faulttransport.Fault{KillAfterSends: sp.DieAfterSends}
	if sp.SlowEveryNth > 0 && sp.SlowFor > 0 {
		fault.SlowEveryNth = sp.SlowEveryNth
		fault.SlowFor = sp.SlowFor
	}
	if fault != (faulttransport.Fault{}) {
		cfg := faulttransport.Config{
			Faults: map[arch.ProcID]faulttransport.Fault{local[0]: fault},
		}
		if sp.DieAfterSends > 0 {
			// Sever, not Close: the cluster must see a death (EOF without
			// detach, sockets torn mid-frame), not a clean shutdown.
			cfg.OnKill = func(arch.ProcID) { killed.Store(true); cl.Sever() }
		}
		tr = faulttransport.New(cl, cfg)
	}
	m := exec.NewMachineOn(s, reg, tr, local)
	m.DeterministicFarm = sp.Deterministic
	m.FT = sp.ft()
	m.Pipeline = sp.Pipeline
	m.PipelineDepth = sp.PipelineDepth
	ob, err := sp.observe(tr, m, nil, trec)
	if err != nil {
		return err
	}
	defer ob.close()
	res, runErr := m.RunWithTimeout(sp.Iters, d)
	if killed.Load() {
		runErr = ErrChaosKilled
	}
	// Best effort even after a failed run: a partial trace is exactly what a
	// post-mortem needs.
	if werr := ob.writeTrace(sp, fmt.Sprintf("trace-node%d.json", procs[0]), res,
		procs, cl.ClockOffsetNS()); werr != nil && runErr == nil {
		runErr = werr
	}
	if runErr != nil {
		return fmt.Errorf("distrib: node %v: %w", procs, runErr)
	}
	return nil
}

// RunCoordinator hosts processor 0 and the hub. listen is the hub bind
// address ("127.0.0.1:0" picks a free port); spawn is called once with the
// bound address and must arrange for processors 1..N-1 to attach (OS
// processes, goroutines — the coordinator does not care). It returns the
// coordinator's recorder (which holds the per-iteration tracking results,
// since processor 0 hosts the input/output nodes) and the run result.
func RunCoordinator(sp Spec, listen string, spawn func(addr string) error, d time.Duration) (*track.Recorder, *exec.RunResult, error) {
	s, reg, rec, err := sp.Compile()
	if err != nil {
		return nil, nil, err
	}
	trec := sp.newRecorder()
	hub, err := nettransport.NewHub(listen, s.Arch, s.Fingerprint(), []arch.ProcID{0},
		append(sp.netOptions(), nettransport.WithTrace(trec))...)
	if err != nil {
		return nil, nil, err
	}
	defer hub.Close()
	m := exec.NewMachineOn(s, reg, hub, []arch.ProcID{0})
	m.DeterministicFarm = sp.Deterministic
	m.FT = sp.ft()
	m.Pipeline = sp.Pipeline
	m.PipelineDepth = sp.PipelineDepth
	// The debug server comes up before the nodes are spawned and before the
	// run starts, so health and metrics are scrapeable while the cluster is
	// attaching and mid-run.
	ob, err := sp.observe(hub, m, hub, trec)
	if err != nil {
		return nil, nil, err
	}
	defer ob.close()
	if spawn != nil {
		if err := spawn(hub.Addr()); err != nil {
			return nil, nil, fmt.Errorf("distrib: spawning nodes: %w", err)
		}
	}
	res, runErr := m.RunWithTimeout(sp.Iters, d)
	if werr := ob.writeTrace(sp, "trace-coord.json", res, []int{0}, 0); werr != nil && runErr == nil {
		runErr = werr
	}
	if runErr != nil {
		return nil, nil, runErr
	}
	return rec, res, nil
}

// RunInProcess executes the spec on the plain in-process executive — the
// reference the distributed run must match bit for bit.
func RunInProcess(sp Spec, d time.Duration) (*track.Recorder, *exec.RunResult, error) {
	s, reg, rec, err := sp.Compile()
	if err != nil {
		return nil, nil, err
	}
	if sp.TraceDir == "" && sp.DebugAddr == "" {
		m := exec.NewMachine(s, reg)
		m.DeterministicFarm = sp.Deterministic
		m.FT = sp.ft()
		m.Pipeline = sp.Pipeline
		m.PipelineDepth = sp.PipelineDepth
		res, err := m.RunWithTimeout(sp.Iters, d)
		if err != nil {
			return nil, nil, err
		}
		return rec, res, nil
	}
	// Observability needs the transport before the run (metrics bind to its
	// Stats, the recorder must be armed first), so host every processor on
	// an explicit mem transport instead of the machine's per-run one.
	t := memtransport.New(s.Arch)
	defer t.Close()
	local := make([]arch.ProcID, s.Arch.N)
	for i := range local {
		local[i] = arch.ProcID(i)
	}
	m := exec.NewMachineOn(s, reg, t, local)
	m.DeterministicFarm = sp.Deterministic
	m.FT = sp.ft()
	m.Pipeline = sp.Pipeline
	m.PipelineDepth = sp.PipelineDepth
	ob, err := sp.observe(t, m, nil, sp.newRecorder())
	if err != nil {
		return nil, nil, err
	}
	defer ob.close()
	procs := make([]int, s.Arch.N)
	for i := range procs {
		procs[i] = i
	}
	res, runErr := m.RunWithTimeout(sp.Iters, d)
	if werr := ob.writeTrace(sp, "trace-coord.json", res, procs, 0); werr != nil && runErr == nil {
		runErr = werr
	}
	if runErr != nil {
		return nil, nil, runErr
	}
	return rec, res, nil
}
