// Package sim is the timing model of the Transvision platform: a
// discrete-event simulation of the distributed executive running on the
// architecture graph (T9000 Transputers on configurable topologies, 25 Hz
// video input). It executes the *same* operations as the goroutine backend
// — actually calling the registered user functions, so data-dependent
// behaviour such as uneven window workloads is captured — while advancing
// virtual clocks for processors and links.
//
// This is the "optional real-time performance measurement" of the SynDEx
// executive (paper §3) extended into a full platform model, substituting
// for the Transputer hardware of the paper's evaluation.
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"skipper/internal/arch"
	"skipper/internal/exec"
	"skipper/internal/graph"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// Kernel overhead constants, in processor cycles. They model the Transputer
// executive primitives: posting a message to a link, accepting a delivery,
// and spawning a worker thread.
const (
	SendOverheadCycles  = 400
	RecvOverheadCycles  = 400
	SpawnOverheadCycles = 600
)

// VideoPeriod is the frame period of the 25 Hz camera (seconds).
const VideoPeriod = 1.0 / 25.0

// Options configures a simulation run.
type Options struct {
	// Iters is the number of stream iterations (1 for one-shot graphs).
	Iters int
	// FramePeriod paces the Input node like a camera: frame k becomes
	// available at time k*FramePeriod and the input process blocks for the
	// next unconsumed frame. Zero disables pacing.
	FramePeriod float64
	// Trace records per-processor activity spans (Result.Spans), the
	// executive's "optional real-time performance measurement".
	Trace bool
}

// Span is one recorded activity interval on a processor.
type Span struct {
	Proc       arch.ProcID
	Start, End float64
	Label      string
}

// IterStats records per-iteration timing.
type IterStats struct {
	// Start is when the input process began acquiring this iteration's
	// frame; End is when the output process delivered the result.
	Start, End float64
	// Latency = End - Start.
	Latency float64
	// Frame is the index of the video frame consumed (-1 without pacing).
	Frame int
}

// Result is the outcome of a simulation.
type Result struct {
	// Outputs collects the Output node's value per iteration.
	Outputs []value.Value
	// Iters holds per-iteration timing.
	Iters []IterStats
	// Total is the virtual time at which the last iteration completed.
	Total float64
	// FramesConsumed and FramesSkipped summarize input pacing: skipped
	// frames are those the pipeline was too slow to process ("one image
	// out of 3", paper §4).
	FramesConsumed, FramesSkipped int
	// Busy is the per-processor busy time (for utilization reports).
	Busy []float64
	// Spans holds the activity chronogram when Options.Trace was set.
	Spans []Span
}

// MeanLatency averages the per-iteration latency, excluding the first
// warmup iterations.
func (r *Result) MeanLatency(warmup int) float64 {
	if warmup >= len(r.Iters) {
		warmup = 0
	}
	sum, n := 0.0, 0
	for _, it := range r.Iters[warmup:] {
		sum += it.Latency
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxLatency returns the worst iteration latency after warmup.
func (r *Result) MaxLatency(warmup int) float64 {
	if warmup >= len(r.Iters) {
		warmup = 0
	}
	m := 0.0
	for _, it := range r.Iters[warmup:] {
		if it.Latency > m {
			m = it.Latency
		}
	}
	return m
}

// simulator carries the virtual-time state.
type simulator struct {
	s   *syndex.Schedule
	reg *value.Registry
	a   *arch.Arch

	procClock []float64
	linkFree  map[arch.LinkID]float64
	busy      []float64

	// Per-iteration value/timing tables.
	outs    map[graph.NodeID][]value.Value
	ready   map[graph.EdgeID]float64 // value availability at the consumer
	memVal  map[graph.NodeID]value.Value
	memTime map[graph.NodeID]float64

	lastFrame int
	skipped   int
	inStart   float64

	trace bool
	spans []Span
}

// Run simulates the schedule.
func Run(s *syndex.Schedule, reg *value.Registry, opts Options) (*Result, error) {
	if opts.Iters < 1 {
		opts.Iters = 1
	}
	sm := &simulator{
		s: s, reg: reg, a: s.Arch,
		procClock: make([]float64, s.Arch.N),
		linkFree:  map[arch.LinkID]float64{},
		busy:      make([]float64, s.Arch.N),
		memVal:    map[graph.NodeID]value.Value{},
		memTime:   map[graph.NodeID]float64{},
		lastFrame: -1,
		trace:     opts.Trace,
	}
	res := &Result{}
	for iter := 0; iter < opts.Iters; iter++ {
		st, err := sm.iteration(opts, iter)
		if err != nil {
			return nil, err
		}
		res.Iters = append(res.Iters, st.stats)
		if st.hasOutput {
			res.Outputs = append(res.Outputs, st.output)
		}
	}
	for _, c := range sm.procClock {
		if c > res.Total {
			res.Total = c
		}
	}
	res.Busy = sm.busy
	res.FramesConsumed = len(res.Iters)
	res.FramesSkipped = sm.skipped
	res.Spans = sm.spans
	return res, nil
}

type iterResult struct {
	stats     IterStats
	output    value.Value
	hasOutput bool
}

// spend advances a processor's clock by the given cycles starting no
// earlier than at; it returns the finish time.
func (sm *simulator) spend(p arch.ProcID, at float64, cycles int64) float64 {
	start := math.Max(sm.procClock[p], at)
	d := sm.a.CycleSeconds(cycles)
	sm.procClock[p] = start + d
	sm.busy[p] += d
	return sm.procClock[p]
}

// record appends a labelled activity span when tracing is on.
func (sm *simulator) record(p arch.ProcID, start, end float64, label string) {
	if sm.trace && end > start {
		sm.spans = append(sm.spans, Span{Proc: p, Start: start, End: end, Label: label})
	}
}

// spendLabelled is spend plus chronogram recording.
func (sm *simulator) spendLabelled(p arch.ProcID, at float64, cycles int64, label string) float64 {
	start := math.Max(sm.procClock[p], at)
	end := sm.spend(p, at, cycles)
	sm.record(p, start, end, label)
	return end
}

// transfer ships bytes from src to dst starting at t, modelling per-link
// serialization (store-and-forward); it returns the arrival time.
func (sm *simulator) transfer(src, dst arch.ProcID, bytes int, t float64) float64 {
	if src == dst {
		return t
	}
	route := sm.a.Route(src, dst)
	for i := 0; i+1 < len(route); i++ {
		l := arch.LinkID{From: route[i], To: route[i+1]}
		start := math.Max(t, sm.linkFree[l])
		end := start + sm.a.TransferSeconds(bytes)
		sm.linkFree[l] = end
		t = end
	}
	return t
}

// iteration simulates one pass over the topological order.
func (sm *simulator) iteration(opts Options, iter int) (*iterResult, error) {
	g := sm.s.Graph
	sm.outs = map[graph.NodeID][]value.Value{}
	sm.ready = map[graph.EdgeID]float64{}
	sm.inStart = -1
	ir := &iterResult{stats: IterStats{Frame: -1}}

	for _, id := range sm.s.Topo {
		n := g.Node(id)
		if n.Kind == graph.KindWorker {
			// Workers are simulated inside their master's protocol; the
			// spawn overhead is charged to the worker's processor.
			sm.spend(sm.s.Assign[id], sm.procClock[sm.s.Assign[id]], SpawnOverheadCycles)
			continue
		}
		if err := sm.simNode(n, opts, iter, ir); err != nil {
			return nil, err
		}
	}
	// Memory writes close the iteration.
	for _, n := range g.Nodes {
		if n.Kind != graph.KindMem {
			continue
		}
		for _, e := range g.InEdges(n.ID) {
			if !e.Back {
				continue
			}
			v, t, err := sm.edgeValue(e)
			if err != nil {
				return nil, err
			}
			sm.memVal[n.ID] = v
			sm.memTime[n.ID] = t
		}
	}
	return ir, nil
}

// edgeValue returns the value travelling on e and the time it is available
// at the consumer's processor.
func (sm *simulator) edgeValue(e *graph.Edge) (value.Value, float64, error) {
	outs, ok := sm.outs[e.From]
	if !ok || e.FromPort >= len(outs) {
		return nil, 0, fmt.Errorf("sim: edge %d read before its producer ran", e.ID)
	}
	return outs[e.FromPort], sm.ready[e.ID], nil
}

// inputsOf gathers values and the earliest start time for a node.
func (sm *simulator) inputsOf(n *graph.Node) ([]value.Value, float64, error) {
	var inputs []value.Value
	at := 0.0
	for _, e := range sm.s.Graph.InEdges(n.ID) {
		if e.Back || e.Intra {
			continue
		}
		v, t, err := sm.edgeValue(e)
		if err != nil {
			return nil, 0, err
		}
		inputs = append(inputs, v)
		if t > at {
			at = t
		}
	}
	return inputs, at, nil
}

// propagate records a node's outputs and schedules the transfers on its
// forward out-edges.
func (sm *simulator) propagate(n *graph.Node, outs []value.Value, finish float64) {
	sm.outs[n.ID] = outs
	p := sm.s.Assign[n.ID]
	for _, e := range sm.s.Graph.OutEdges(n.ID) {
		if e.Intra {
			continue
		}
		dst := sm.s.Assign[e.To]
		if sm.s.Graph.Node(e.To).Kind == graph.KindWorker {
			continue // farm protocol handles its own transfers
		}
		var v value.Value
		if e.FromPort < len(outs) {
			v = outs[e.FromPort]
		}
		t := finish
		if dst != p {
			t = sm.spend(p, finish, SendOverheadCycles)
			t = sm.transfer(p, dst, value.SizeOf(v), t)
			// Receive overhead is charged when the consumer starts; model
			// it as part of arrival.
			t += sm.a.CycleSeconds(RecvOverheadCycles)
		}
		sm.ready[e.ID] = t
	}
}

func (sm *simulator) simNode(n *graph.Node, opts Options, iter int, ir *iterResult) error {
	p := sm.s.Assign[n.ID]
	switch n.Kind {
	case graph.KindMem:
		inputs, at, err := sm.inputsOf(n)
		if err != nil {
			return err
		}
		v, ok := sm.memVal[n.ID]
		t := at
		if !ok {
			v = inputs[0]
		} else if sm.memTime[n.ID] > t {
			t = sm.memTime[n.ID]
		}
		finish := sm.spend(p, t, 200)
		sm.propagate(n, []value.Value{v}, finish)
		return nil

	case graph.KindMaster:
		return sm.simMaster(n, p)

	case graph.KindInput:
		inputs, at, err := sm.inputsOf(n)
		if err != nil {
			return err
		}
		start := math.Max(sm.procClock[p], at)
		frame := -1
		if opts.FramePeriod > 0 {
			// Frame k is available at k*period; take the newest available
			// frame not yet consumed, waiting for the next one if needed.
			avail := int(math.Floor(start / opts.FramePeriod))
			frame = avail
			if frame <= sm.lastFrame {
				frame = sm.lastFrame + 1
			}
			sm.skipped += frame - sm.lastFrame - 1
			sm.lastFrame = frame
			fr := float64(frame) * opts.FramePeriod
			if fr > start {
				start = fr
			}
		}
		ir.stats.Start = start
		ir.stats.Frame = frame
		outs, err := exec.EvalNode(n, sm.reg, inputs)
		if err != nil {
			return err
		}
		finish := sm.spendLabelled(p, start, exec.CostOfNode(n, sm.reg, inputs), n.Name)
		sm.propagate(n, outs, finish)
		return nil

	case graph.KindOutput:
		inputs, at, err := sm.inputsOf(n)
		if err != nil {
			return err
		}
		if _, err := exec.EvalNode(n, sm.reg, inputs); err != nil {
			return err
		}
		finish := sm.spendLabelled(p, at, exec.CostOfNode(n, sm.reg, inputs), n.Name)
		ir.stats.End = finish
		ir.stats.Latency = finish - ir.stats.Start
		ir.output = inputs[0]
		ir.hasOutput = true
		return nil

	default:
		inputs, at, err := sm.inputsOf(n)
		if err != nil {
			return err
		}
		outs, err := exec.EvalNode(n, sm.reg, inputs)
		if err != nil {
			return err
		}
		finish := sm.spendLabelled(p, at, exec.CostOfNode(n, sm.reg, inputs), n.Name)
		sm.propagate(n, outs, finish)
		return nil
	}
}

// simMaster simulates the dynamic farm protocol in virtual time: the master
// dispatches demand-driven, workers compute with their data-dependent cost
// models, replies are accumulated in arrival order.
func (sm *simulator) simMaster(n *graph.Node, p arch.ProcID) error {
	g := sm.s.Graph
	inputs, at, err := sm.inputsOf(n)
	if err != nil {
		return err
	}
	xs, ok := inputs[0].(value.List)
	if !ok {
		return fmt.Errorf("sim: farm input of %s is not a list", n.Name)
	}
	acc := inputs[1]
	accFn, ok := sm.reg.Lookup(n.AccFn)
	if !ok {
		return fmt.Errorf("sim: accumulate function %q not registered", n.AccFn)
	}
	// Worker table.
	type workerInfo struct {
		proc arch.ProcID
		comp *value.Func
	}
	workers := make([]workerInfo, n.Workers)
	for _, e := range g.OutEdges(n.ID) {
		w := g.Node(e.To)
		if w.Kind != graph.KindWorker {
			continue
		}
		comp, ok := sm.reg.Lookup(w.Fn)
		if !ok {
			return fmt.Errorf("sim: worker function %q not registered", w.Fn)
		}
		workers[w.Index] = workerInfo{proc: sm.s.Assign[e.To], comp: comp}
	}

	mClock := math.Max(sm.procClock[p], at)

	type pendingReply struct {
		arrival float64
		widx    int
		v       value.Value
	}
	var replies []pendingReply
	pushReply := func(r pendingReply) {
		replies = append(replies, r)
	}
	popEarliest := func() pendingReply {
		best := 0
		for i := 1; i < len(replies); i++ {
			if replies[i].arrival < replies[best].arrival {
				best = i
			}
		}
		r := replies[best]
		replies = append(replies[:best], replies[best+1:]...)
		return r
	}

	dispatch := func(widx int, t value.Value) {
		w := workers[widx]
		mClock = sm.spendAt(p, mClock, SendOverheadCycles)
		arr := sm.transfer(p, w.proc, value.SizeOf(t), mClock)
		start := math.Max(arr, sm.procClock[w.proc])
		cost := w.comp.CostOf([]value.Value{t})
		y := w.comp.Fn([]value.Value{t})
		end := sm.spendProcAt(w.proc, start, cost)
		sm.record(w.proc, start, end, w.comp.Name)
		back := sm.transfer(w.proc, p, value.SizeOf(y), end)
		pushReply(pendingReply{arrival: back, widx: widx, v: y})
	}

	pending := append(value.List{}, xs...)
	outstanding := 0
	idle := []int{}
	for w := 0; w < n.Workers; w++ {
		if len(pending) > 0 {
			dispatch(w, pending[0])
			pending = pending[1:]
			outstanding++
		} else {
			idle = append(idle, w)
		}
	}
	for outstanding > 0 {
		rep := popEarliest()
		outstanding--
		mClock = math.Max(mClock, rep.arrival)
		mClock = sm.spendAt(p, mClock, RecvOverheadCycles)
		if n.TaskFarm {
			pair, ok := rep.v.(value.Tuple)
			if !ok || len(pair) != 2 {
				return fmt.Errorf("sim: tf worker must return (results, new-tasks)")
			}
			ys := pair[0].(value.List)
			more := pair[1].(value.List)
			for _, y := range ys {
				mClock = sm.spendAt(p, mClock, accFn.CostOf([]value.Value{acc, y}))
				acc = accFn.Fn([]value.Value{acc, y})
			}
			pending = append(pending, more...)
		} else {
			mClock = sm.spendAt(p, mClock, accFn.CostOf([]value.Value{acc, rep.v}))
			acc = accFn.Fn([]value.Value{acc, rep.v})
		}
		if len(pending) > 0 {
			dispatch(rep.widx, pending[0])
			pending = pending[1:]
			outstanding++
		} else {
			idle = append(idle, rep.widx)
		}
		for len(pending) > 0 && len(idle) > 0 {
			w := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			dispatch(w, pending[0])
			pending = pending[1:]
			outstanding++
		}
	}
	// Sentinels (small messages) terminate the iteration's worker threads.
	for w := 0; w < n.Workers; w++ {
		mClock = sm.spendAt(p, mClock, SendOverheadCycles/4)
		sm.transfer(p, workers[w].proc, 4, mClock)
	}
	sm.procClock[p] = math.Max(sm.procClock[p], mClock)
	sm.propagate(n, []value.Value{acc}, mClock)
	return nil
}

// spendAt charges cycles to processor p starting at time t (not before its
// clock) and returns the finish time, also advancing the clock.
func (sm *simulator) spendAt(p arch.ProcID, t float64, cycles int64) float64 {
	return sm.spend(p, t, cycles)
}

// spendProcAt charges cycles on p starting exactly at start (the caller has
// already serialized against the proc clock).
func (sm *simulator) spendProcAt(p arch.ProcID, start float64, cycles int64) float64 {
	d := sm.a.CycleSeconds(cycles)
	end := start + d
	if end > sm.procClock[p] {
		sm.procClock[p] = end
	}
	sm.busy[p] += d
	return end
}

// Utilization returns per-processor busy fraction over the run.
func (r *Result) Utilization() []float64 {
	out := make([]float64, len(r.Busy))
	if r.Total <= 0 {
		return out
	}
	for i, b := range r.Busy {
		out[i] = b / r.Total
	}
	return out
}

// FormatLatency renders seconds as milliseconds with 1 decimal.
func FormatLatency(sec float64) string { return fmt.Sprintf("%.1f ms", sec*1000) }

// SortedCopy returns latencies sorted ascending (for percentile reports).
func (r *Result) SortedCopy(warmup int) []float64 {
	if warmup >= len(r.Iters) {
		warmup = 0
	}
	out := make([]float64, 0, len(r.Iters)-warmup)
	for _, it := range r.Iters[warmup:] {
		out = append(out, it.Latency)
	}
	sort.Float64s(out)
	return out
}

// Chronogram renders the recorded activity spans as an ASCII Gantt chart
// (one row per processor, width columns spanning [0, Total]). Requires a
// run with Options.Trace.
func (r *Result) Chronogram(width int) string {
	if width < 10 {
		width = 10
	}
	if r.Total <= 0 || len(r.Spans) == 0 {
		return "(no trace recorded)\n"
	}
	rows := make([][]byte, len(r.Busy))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, sp := range r.Spans {
		c0 := int(sp.Start / r.Total * float64(width))
		c1 := int(sp.End / r.Total * float64(width))
		if c1 >= width {
			c1 = width - 1
		}
		glyph := byte('#')
		if len(sp.Label) > 0 {
			glyph = sp.Label[0]
		}
		for c := c0; c <= c1; c++ {
			rows[sp.Proc][c] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chronogram 0 .. %.1f ms\n", r.Total*1000)
	for p, row := range rows {
		fmt.Fprintf(&b, "P%-2d |%s|\n", p, string(row))
	}
	return b.String()
}
