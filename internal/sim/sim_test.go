package sim

import (
	"math"
	"strings"
	"testing"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/expand"
	"skipper/internal/syndex"
	"skipper/internal/value"
)

// heavyRegistry: square costs 1M cycles (50 ms at 20 MHz), everything else
// is cheap — a farm-bound workload.
func heavyRegistry(costPerTask int64) *value.Registry {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "source", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			n := a[0].(int)
			out := make(value.List, n)
			for i := range out {
				out[i] = i + 1
			}
			return out
		}})
	r.Register(&value.Func{Name: "square", Sig: "int -> int", Arity: 1,
		Fn:   func(a []value.Value) value.Value { x := a[0].(int); return x * x },
		Cost: func([]value.Value) int64 { return costPerTask }})
	r.Register(&value.Func{Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn:   func(a []value.Value) value.Value { return a[0].(int) + a[1].(int) },
		Cost: func([]value.Value) int64 { return 500 }})
	return r
}

const farmSrc = `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
let main = df NW square add 0 (source 16);;
`

func compileFarm(t *testing.T, reg *value.Registry, workers int, a *arch.Arch) *syndex.Schedule {
	t.Helper()
	src := ""
	for _, c := range farmSrc {
		src += string(c)
	}
	src = replaceNW(src, workers)
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := syndex.Map(res.Graph, a, reg, syndex.Structured)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func replaceNW(src string, n int) string {
	out := ""
	for i := 0; i < len(src); i++ {
		if i+1 < len(src) && src[i] == 'N' && src[i+1] == 'W' {
			out += itoa(n)
			i++
			continue
		}
		out += string(src[i])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestSimFunctionalResultMatchesExecutive(t *testing.T) {
	reg := heavyRegistry(100_000)
	s := compileFarm(t, reg, 4, arch.Ring(4))
	simRes, err := Run(s, heavyRegistry(100_000), Options{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	execRes, err := exec.NewMachine(s, heavyRegistry(100_000)).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(simRes.Outputs) != 1 || len(execRes.Outputs) != 1 {
		t.Fatalf("outputs: sim %v exec %v", simRes.Outputs, execRes.Outputs)
	}
	if !value.Equal(simRes.Outputs[0], execRes.Outputs[0]) {
		t.Fatalf("sim %v != exec %v", simRes.Outputs[0], execRes.Outputs[0])
	}
	// Sum of squares 1..16 = 1496.
	if simRes.Outputs[0] != 1496 {
		t.Fatalf("value = %v", simRes.Outputs[0])
	}
}

func TestFarmSpeedupWithProcessors(t *testing.T) {
	// 16 tasks x 1M cycles = 16M cycles = 800 ms sequential at 20 MHz.
	const cost = 1_000_000
	lat := map[int]float64{}
	for _, n := range []int{1, 2, 4, 8} {
		reg := heavyRegistry(cost)
		s := compileFarm(t, reg, n, arch.Ring(n))
		res, err := Run(s, reg, Options{Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		lat[n] = res.Total
	}
	if !(lat[1] > lat[2] && lat[2] > lat[4] && lat[4] > lat[8]) {
		t.Fatalf("no speedup: %v", lat)
	}
	// Near-linear at this granularity: 8 procs at least 4x faster than 1.
	if lat[1]/lat[8] < 4 {
		t.Fatalf("8-proc speedup only %.2fx", lat[1]/lat[8])
	}
}

func TestSequentialBaselineTime(t *testing.T) {
	// On 1 processor the farm degenerates to sequential execution: total
	// ≈ 16 tasks × 1M cycles / 20 MHz = 800 ms plus overheads.
	reg := heavyRegistry(1_000_000)
	s := compileFarm(t, reg, 1, arch.Ring(1))
	res, err := Run(s, reg, Options{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 0.8 || res.Total > 0.9 {
		t.Fatalf("sequential total = %v, want ≈0.8s", res.Total)
	}
}

func TestTransferModel(t *testing.T) {
	a := arch.Ring(8)
	sm := &simulator{a: a, linkFree: map[arch.LinkID]float64{},
		procClock: make([]float64, 8), busy: make([]float64, 8)}
	// Local delivery is free.
	if got := sm.transfer(3, 3, 1_000_000, 1.0); got != 1.0 {
		t.Fatalf("local transfer = %v", got)
	}
	// One hop: latency + bytes/bandwidth.
	oneHop := sm.transfer(0, 1, 100_000, 0)
	want := a.LinkLatency + 100_000/a.LinkBytesPerSec
	if math.Abs(oneHop-want) > 1e-12 {
		t.Fatalf("one hop = %v, want %v", oneHop, want)
	}
	// Four hops cost four times as much (fresh links).
	sm2 := &simulator{a: a, linkFree: map[arch.LinkID]float64{},
		procClock: make([]float64, 8), busy: make([]float64, 8)}
	fourHops := sm2.transfer(0, 4, 100_000, 0)
	if math.Abs(fourHops-4*want) > 1e-12 {
		t.Fatalf("four hops = %v, want %v", fourHops, 4*want)
	}
	// Link contention: a second message on the same busy link waits.
	sm3 := &simulator{a: a, linkFree: map[arch.LinkID]float64{},
		procClock: make([]float64, 8), busy: make([]float64, 8)}
	first := sm3.transfer(0, 1, 100_000, 0)
	second := sm3.transfer(0, 1, 100_000, 0)
	if math.Abs(second-(first+want)) > 1e-12 {
		t.Fatalf("contended transfer = %v, want %v", second, first+want)
	}
}

func TestFramePacingEveryFrame(t *testing.T) {
	// Fast pipeline: latency far below the 40 ms period -> no skipping.
	reg := heavyRegistry(10_000)
	s := compileFarmStream(t, reg, 4)
	res, err := Run(s, reg, Options{Iters: 10, FramePeriod: VideoPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesSkipped != 0 {
		t.Fatalf("skipped %d frames", res.FramesSkipped)
	}
	// Consecutive frames.
	for i, it := range res.Iters {
		if it.Frame != i {
			t.Fatalf("iteration %d consumed frame %d", i, it.Frame)
		}
	}
}

func TestFramePacingSkipsWhenSlow(t *testing.T) {
	// ~100 ms of work per frame on 4 procs ≈ 2 frame periods -> skips.
	reg := heavyRegistry(2_000_000)
	s := compileFarmStream(t, reg, 4)
	res, err := Run(s, reg, Options{Iters: 10, FramePeriod: VideoPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesSkipped == 0 {
		t.Fatal("slow pipeline should skip frames")
	}
	// Frames strictly increasing.
	for i := 1; i < len(res.Iters); i++ {
		if res.Iters[i].Frame <= res.Iters[i-1].Frame {
			t.Fatalf("frames not increasing: %+v", res.Iters)
		}
	}
}

// compileFarmStream wraps the farm in an itermem loop.
func compileFarmStream(t *testing.T, reg *value.Registry, workers int) *syndex.Schedule {
	t.Helper()
	if _, ok := reg.Lookup("grab"); !ok {
		reg.Register(&value.Func{Name: "grab", Sig: "unit -> int list", Arity: 1,
			Fn: func([]value.Value) value.Value {
				out := make(value.List, 16)
				for i := range out {
					out[i] = i + 1
				}
				return out
			},
			Cost: func([]value.Value) int64 { return 10_000 }})
		reg.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
			Fn: func([]value.Value) value.Value { return value.Unit{} }})
		reg.Register(&value.Func{Name: "carry", Sig: "int * int -> int * int", Arity: 1,
			Fn: func(a []value.Value) value.Value {
				pr := a[0].(value.Tuple)
				return value.Tuple{pr[0], pr[1]}
			}})
	}
	src := `
extern grab : unit -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
extern show : int -> unit;;
extern carry : int * int -> int * int;;
let loop (z, xs) =
  let s = df ` + itoa(workers) + ` square add 0 xs in
  carry (z, s);;
let main = itermem grab loop show 0 ();;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := syndex.Map(res.Graph, arch.Ring(4), reg, syndex.Structured)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamLatencyStatsAndUtilization(t *testing.T) {
	reg := heavyRegistry(500_000)
	s := compileFarmStream(t, reg, 4)
	res, err := Run(s, reg, Options{Iters: 8, FramePeriod: VideoPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 8 {
		t.Fatalf("iters = %d", len(res.Iters))
	}
	mean := res.MeanLatency(2)
	if mean <= 0 {
		t.Fatalf("mean latency = %v", mean)
	}
	if res.MaxLatency(2) < mean {
		t.Fatal("max < mean")
	}
	util := res.Utilization()
	if len(util) != 4 {
		t.Fatalf("util = %v", util)
	}
	for p, u := range util {
		if u < 0 || u > 1.0001 {
			t.Fatalf("processor %d utilization %v", p, u)
		}
	}
	sorted := res.SortedCopy(2)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("SortedCopy not sorted")
		}
	}
	if FormatLatency(0.0301) != "30.1 ms" {
		t.Fatalf("FormatLatency = %q", FormatLatency(0.0301))
	}
}

func TestLoadBalancingBeatsStaticOnSkewedTasks(t *testing.T) {
	// Skewed task costs: one huge task plus many small. df's dynamic
	// dispatch overlaps the big task with the small ones; a static
	// round-robin (modelled by scm with fixed chunks) cannot. We verify
	// the df farm's makespan is close to the big task's cost, not the sum.
	big := int64(5_000_000)
	small := int64(100_000)
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "source", Sig: "int -> int list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			out := make(value.List, 8)
			for i := range out {
				out[i] = i
			}
			return out
		}})
	r.Register(&value.Func{Name: "square", Sig: "int -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value { return a[0] },
		Cost: func(a []value.Value) int64 {
			if a[0].(int) == 0 {
				return big
			}
			return small
		}})
	r.Register(&value.Func{Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn:   func(a []value.Value) value.Value { return a[0].(int) + a[1].(int) },
		Cost: func([]value.Value) int64 { return 200 }})
	s := compileFarm(t, r, 4, arch.Ring(4))
	res, err := Run(s, r, Options{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	bigSec := float64(big) / arch.TransputerHz // 0.25 s
	if res.Total > bigSec*1.3 {
		t.Fatalf("dynamic farm makespan %v should approach big-task bound %v",
			res.Total, bigSec)
	}
}

func TestMemCarriesAcrossIterations(t *testing.T) {
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "grab", Sig: "unit -> int", Arity: 1,
		Fn: func([]value.Value) value.Value { return 1 }})
	r.Register(&value.Func{Name: "step", Sig: "int * int -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			pr := a[0].(value.Tuple)
			z := pr[0].(int) + pr[1].(int)
			return value.Tuple{z, z}
		}})
	r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
		Fn: func([]value.Value) value.Value { return value.Unit{} }})
	src := `
extern grab : unit -> int;;
extern step : int * int -> int * int;;
extern show : int -> unit;;
let main = itermem grab step show 0 ();;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := expand.Expand(prog, info, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := syndex.Map(eres.Graph, arch.Ring(2), r, syndex.Structured)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, r, Options{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	for i, w := range want {
		if res.Outputs[i] != w {
			t.Fatalf("outputs = %v", res.Outputs)
		}
	}
}

func TestLatencyMonotoneInTaskCost(t *testing.T) {
	prev := 0.0
	for _, cost := range []int64{10_000, 100_000, 1_000_000} {
		reg := heavyRegistry(cost)
		s := compileFarm(t, reg, 4, arch.Ring(4))
		res, err := Run(s, reg, Options{Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Total <= prev {
			t.Fatalf("latency not monotone at cost %d: %v <= %v", cost, res.Total, prev)
		}
		prev = res.Total
	}
}

func TestMeanLatencyEmptyAndWarmupClamp(t *testing.T) {
	r := &Result{Iters: []IterStats{{Latency: 2}, {Latency: 4}}}
	if got := r.MeanLatency(0); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	// Warmup beyond length falls back to all iterations.
	if got := r.MeanLatency(10); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	empty := &Result{}
	if empty.MeanLatency(0) != 0 || empty.MaxLatency(0) != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestChronogram(t *testing.T) {
	reg := heavyRegistry(500_000)
	s := compileFarm(t, reg, 4, arch.Ring(4))
	res, err := Run(s, reg, Options{Iters: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Worker compute spans appear on processors other than 0.
	remote := false
	for _, sp := range res.Spans {
		if sp.Proc != 0 && sp.Label == "square" {
			remote = true
		}
		if sp.End <= sp.Start {
			t.Fatalf("degenerate span %+v", sp)
		}
		if sp.End > res.Total+1e-9 {
			t.Fatalf("span beyond total: %+v (total %v)", sp, res.Total)
		}
	}
	if !remote {
		t.Fatal("no remote worker spans")
	}
	art := res.Chronogram(60)
	if !strings.Contains(art, "P0") || !strings.Contains(art, "P3") {
		t.Fatalf("chronogram malformed:\n%s", art)
	}
	if !strings.Contains(art, "s") { // 'square' glyph on worker rows
		t.Fatalf("worker activity missing:\n%s", art)
	}
}

func TestChronogramWithoutTrace(t *testing.T) {
	reg := heavyRegistry(10_000)
	s := compileFarm(t, reg, 2, arch.Ring(2))
	res, err := Run(s, reg, Options{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != 0 {
		t.Fatal("spans recorded without Trace")
	}
	if got := res.Chronogram(40); !strings.Contains(got, "no trace") {
		t.Fatalf("got %q", got)
	}
}

func TestChronogramSVG(t *testing.T) {
	reg := heavyRegistry(500_000)
	s := compileFarm(t, reg, 4, arch.Ring(4))
	res, err := Run(s, reg, Options{Iters: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := res.ChronogramSVG(400, 14)
	for _, want := range []string{"<svg", "</svg>", "P0", "P3", "<title>square", "ms</text>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// No trace: placeholder.
	empty := &Result{Busy: make([]float64, 2)}
	if !strings.Contains(empty.ChronogramSVG(200, 10), "no trace") {
		t.Fatal("placeholder missing")
	}
}

func TestSimulationDeterministic(t *testing.T) {
	// Two runs of the same schedule produce bit-identical timing: the
	// virtual-time model must not depend on map iteration order or any
	// other nondeterminism.
	run := func() *Result {
		reg := heavyRegistry(321_000)
		s := compileFarm(t, reg, 4, arch.Ring(4))
		res, err := Run(s, reg, Options{Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Total != b.Total {
		t.Fatalf("totals differ: %v vs %v", a.Total, b.Total)
	}
	for i := range a.Busy {
		if a.Busy[i] != b.Busy[i] {
			t.Fatalf("busy[%d] differs: %v vs %v", i, a.Busy[i], b.Busy[i])
		}
	}
}
