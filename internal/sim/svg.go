package sim

import "skipper/internal/obsv"

// ChronogramSVG renders the recorded activity spans as a standalone SVG
// Gantt chart: one lane per processor, colored blocks per activity, a
// millisecond axis along the bottom. Requires a run with Options.Trace.
// The rendering is shared with the measured chronogram (obsv.Trace), so a
// predicted and a measured diagram of the same run are directly comparable.
func (r *Result) ChronogramSVG(width, laneHeight int) string {
	spans := make([]obsv.Span, len(r.Spans))
	for i, sp := range r.Spans {
		spans[i] = obsv.Span{
			Proc:  int(sp.Proc),
			Start: sp.Start,
			End:   sp.End,
			Label: sp.Label,
		}
	}
	return obsv.ChronogramSVG(spans, len(r.Busy), r.Total, width, laneHeight)
}
