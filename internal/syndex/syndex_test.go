package syndex

import (
	"strings"
	"testing"

	"skipper/internal/arch"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/expand"
	"skipper/internal/graph"
	"skipper/internal/value"
)

// pipelineRegistry registers arithmetic stand-ins used by the DSL programs
// in these tests.
func pipelineRegistry() *value.Registry {
	r := value.NewRegistry()
	reg := func(name, sig string, arity int, fn func([]value.Value) value.Value, cost int64) {
		r.Register(&value.Func{Name: name, Sig: sig, Arity: arity, Fn: fn, EstCost: cost})
	}
	reg("source", "int -> int list", 1, func(a []value.Value) value.Value {
		n := a[0].(int)
		out := make(value.List, n)
		for i := range out {
			out[i] = i
		}
		return out
	}, 2000)
	reg("square", "int -> int", 1, func(a []value.Value) value.Value {
		x := a[0].(int)
		return x * x
	}, 50_000)
	reg("add", "int -> int -> int", 2, func(a []value.Value) value.Value {
		return a[0].(int) + a[1].(int)
	}, 1000)
	return r
}

const farmSrc = `
extern source : int -> int list;;
extern square : int -> int;;
extern add : int -> int -> int;;
let main = df 4 square add 0 (source 10);;
`

func compileGraph(t *testing.T, src string, reg *value.Registry) *graph.Graph {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	return res.Graph
}

func TestMapStructuredPlacement(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	a := arch.Ring(4)
	s, err := Map(g, a, reg, Structured)
	if err != nil {
		t.Fatal(err)
	}
	// Workers spread over distinct processors (4 workers, 4 procs).
	procs := map[arch.ProcID]int{}
	for _, n := range g.Nodes {
		if n.Kind == graph.KindWorker {
			procs[s.Assign[n.ID]]++
		}
	}
	if len(procs) != 4 {
		t.Fatalf("workers on %d processors, want 4: %v", len(procs), procs)
	}
	// Control nodes on processor 0.
	for _, n := range g.Nodes {
		if n.Kind == graph.KindMaster && s.Assign[n.ID] != 0 {
			t.Fatalf("master on processor %d", s.Assign[n.ID])
		}
	}
}

func TestMapSingleProcessor(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	s, err := Map(g, arch.Ring(1), reg, Structured)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Assign {
		if p != 0 {
			t.Fatal("single-processor mapping must place everything on 0")
		}
	}
	// No static sends on one processor.
	for _, op := range s.Programs[0] {
		if op.Kind == OpSend || op.Kind == OpRecv {
			t.Fatalf("unexpected comm op on 1-proc machine: %+v", op)
		}
	}
}

func TestSendsMatchedWithRecvs(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	for _, n := range []int{2, 3, 8} {
		s, err := Map(g, arch.Ring(n), reg, Structured)
		if err != nil {
			t.Fatalf("ring(%d): %v", n, err)
		}
		sends, recvs := map[graph.EdgeID]int{}, map[graph.EdgeID]int{}
		for _, prog := range s.Programs {
			for _, op := range prog {
				if op.Kind == OpSend {
					sends[op.Edge]++
				}
				if op.Kind == OpRecv {
					recvs[op.Edge]++
				}
			}
		}
		for e, c := range sends {
			if recvs[e] != c {
				t.Fatalf("edge %d: %d sends vs %d recvs", e, c, recvs[e])
			}
		}
	}
}

func TestWorkerSpawnPrecedesMaster(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	s, err := Map(g, arch.Ring(1), reg, Structured)
	if err != nil {
		t.Fatal(err)
	}
	prog := s.Programs[0]
	masterAt, firstWorker := -1, -1
	for i, op := range prog {
		if op.Kind == OpMaster && masterAt == -1 {
			masterAt = i
		}
		if op.Kind == OpWorker && firstWorker == -1 {
			firstWorker = i
		}
	}
	if masterAt == -1 || firstWorker == -1 {
		t.Fatalf("ops missing: master=%d worker=%d", masterAt, firstWorker)
	}
	if firstWorker > masterAt {
		t.Fatal("co-located workers must be spawned before the master blocks")
	}
}

func TestListSchedulerProducesValidSchedule(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	s, err := Map(g, arch.Ring(4), reg, ListSched)
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy != ListSched {
		t.Fatal("strategy not recorded")
	}
	total := 0
	for _, prog := range s.Programs {
		total += len(prog)
	}
	if total == 0 {
		t.Fatal("empty schedule")
	}
}

func TestMacroCodeRendering(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	s, err := Map(g, arch.Ring(4), reg, Structured)
	if err != nil {
		t.Fatal(err)
	}
	mc := s.MacroCode()
	for _, want := range []string{
		"processor_(0)", "processor_(3)", "master_(", "worker_(", "end_",
		"acc=add", "comp=square", "exec_(source",
	} {
		if !strings.Contains(mc, want) {
			t.Fatalf("macro-code missing %q:\n%s", want, mc)
		}
	}
}

const scmSrc = `
extern source : int -> int list;;
extern chunk4 : int list -> int list list;;
extern sum : int list -> int;;
extern total : int list -> int;;
let main = scm 4 chunk4 sum total (source 16);;
`

func scmRegistry() *value.Registry {
	r := pipelineRegistry()
	r.Register(&value.Func{Name: "chunk4", Sig: "int list -> int list list", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			xs := a[0].(value.List)
			out := make(value.List, 4)
			for i := 0; i < 4; i++ {
				lo, hi := i*len(xs)/4, (i+1)*len(xs)/4
				out[i] = value.List(xs[lo:hi])
			}
			return out
		}})
	r.Register(&value.Func{Name: "sum", Sig: "int list -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			s := 0
			for _, v := range a[0].(value.List) {
				s += v.(int)
			}
			return s
		}})
	r.Register(&value.Func{Name: "total", Sig: "int list -> int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			s := 0
			for _, v := range a[0].(value.List) {
				s += v.(int)
			}
			return s
		}})
	return r
}

func TestSCMScheduleHasStaticComms(t *testing.T) {
	reg := scmRegistry()
	g := compileGraph(t, scmSrc, reg)
	s, err := Map(g, arch.Ring(4), reg, Structured)
	if err != nil {
		t.Fatal(err)
	}
	mc := s.MacroCode()
	if !strings.Contains(mc, "send_(") || !strings.Contains(mc, "recv_(") {
		t.Fatalf("scm schedule should ship sub-domains across processors:\n%s", mc)
	}
	// The scm compute nodes are spread across processors.
	procs := map[arch.ProcID]bool{}
	for _, n := range g.Nodes {
		if n.Kind == graph.KindFunc && n.Fn == "sum" {
			procs[s.Assign[n.ID]] = true
		}
	}
	if len(procs) != 4 {
		t.Fatalf("sum nodes on %d processors", len(procs))
	}
}

func TestSummaryAndLoads(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	s, err := Map(g, arch.Ring(4), reg, Structured)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if !strings.Contains(sum, "P0:") || !strings.Contains(sum, "P3:") {
		t.Fatalf("summary:\n%s", sum)
	}
	loads := s.Loads()
	if len(loads) != 4 {
		t.Fatalf("loads = %v", loads)
	}
	for p, l := range loads {
		if l == 0 {
			t.Fatalf("processor %d has no compute ops: %v", p, loads)
		}
	}
}

func TestDisconnectedArchitectureRejected(t *testing.T) {
	// A 1-node "ring" is connected; build a disconnected arch artificially
	// is not exposed, so check the connectivity guard with a valid arch and
	// invalid graph instead: unvalidated graph with dangling port.
	g := graph.New()
	g.AddNode(&graph.Node{Kind: graph.KindFunc, Name: "f", In: 1})
	if _, err := Map(g, arch.Ring(2), pipelineRegistry(), Structured); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMemWriteScheduledLast(t *testing.T) {
	src := `
type img;;
extern grab : int -> img;;
extern step : int * img -> int * int;;
extern show : int -> unit;;
let loop (z, im) = step (z, im);;
let main = itermem grab loop show 0 7;;
`
	r := value.NewRegistry()
	r.Register(&value.Func{Name: "grab", Sig: "int -> img", Arity: 1,
		Fn: func(a []value.Value) value.Value { return "IMG" }})
	r.Register(&value.Func{Name: "step", Sig: "int * img -> int * int", Arity: 1,
		Fn: func(a []value.Value) value.Value {
			z := a[0].(value.Tuple)[0].(int)
			return value.Tuple{z + 1, z}
		}})
	r.Register(&value.Func{Name: "show", Sig: "int -> unit", Arity: 1,
		Fn: func([]value.Value) value.Value { return value.Unit{} }})
	g := compileGraph(t, src, r)
	s, err := Map(g, arch.Ring(2), r, Structured)
	if err != nil {
		t.Fatal(err)
	}
	prog := s.Programs[0]
	last := prog[len(prog)-1]
	if last.Kind != OpMemWrite {
		t.Fatalf("last op on root = %+v, want memwrite", last)
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpMaster.String() != "master" || OpKind(42).String() == "" {
		t.Fatal("op names broken")
	}
	if Structured.String() != "structured" || ListSched.String() != "listsched" {
		t.Fatal("strategy names broken")
	}
}

func TestMacroCodeFiles(t *testing.T) {
	reg := pipelineRegistry()
	g := compileGraph(t, farmSrc, reg)
	s, err := Map(g, arch.Ring(4), reg, Structured)
	if err != nil {
		t.Fatal(err)
	}
	files := s.MacroCodeFiles()
	if len(files) != 4 {
		t.Fatalf("got %d files", len(files))
	}
	for name, content := range files {
		if !strings.HasPrefix(name, "proc") || !strings.HasSuffix(name, ".m4") {
			t.Fatalf("bad file name %q", name)
		}
		if !strings.Contains(content, "processor_(") || !strings.Contains(content, "end_") {
			t.Fatalf("%s malformed:\n%s", name, content)
		}
	}
	if !strings.Contains(files["proc0.m4"], "master_(") {
		t.Fatal("root processor missing master op")
	}
	if !strings.Contains(files["proc1.m4"], "worker_(") {
		t.Fatal("worker processor missing worker op")
	}
}
