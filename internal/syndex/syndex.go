// Package syndex reimplements the role SynDEx [13] plays in SKiPPER: it
// "performs a static distribution of processes onto processors and a mixed
// static/dynamic scheduling of communications onto channels … generat[ing] a
// dead-lock free distributed executive with optional real-time performance
// measurement" (paper §3). The underlying approach is the AAA
// ("Algorithm Architecture Adequation") methodology: match the algorithm
// graph against the architecture graph to minimize the critical path.
//
// Two distribution strategies are provided:
//
//   - Structured: SKiPPER's canonical placement — stream control (Input,
//     Output, MEM), plain function nodes and skeleton control processes on
//     the root processor, farm workers and scm compute processes spread
//     round-robin over the machine. This matches how the Transvision
//     applications were laid out.
//   - ListSched: a general HEFT-style list scheduler over estimated costs,
//     used as the baseline in the ablation experiments.
//
// The result is a deadlock-free static schedule: per-processor ordered
// operation lists in which every receive is preceded (in global topological
// order) by its matching send, together with the dynamic master/worker
// protocol of the farm skeletons (the "mixed static/dynamic" part).
package syndex

import (
	"fmt"
	"sort"
	"strings"

	"skipper/internal/arch"
	"skipper/internal/graph"
	"skipper/internal/value"
)

// Strategy selects the distribution heuristic.
type Strategy int

const (
	// Structured is SKiPPER's canonical skeleton-aware placement.
	Structured Strategy = iota
	// ListSched is a generic estimated-finish-time list scheduler.
	ListSched
)

func (s Strategy) String() string {
	if s == ListSched {
		return "listsched"
	}
	return "structured"
}

// OpKind enumerates executive operations.
type OpKind int

// Executive operation kinds. OpExec covers every static node; OpMaster and
// OpWorker run the dynamic farm protocol; OpMemWrite stores the itermem
// feedback value for the next iteration; OpSend/OpRecv are the statically
// scheduled communications.
const (
	OpExec OpKind = iota
	OpSend
	OpRecv
	OpMaster
	OpWorker
	OpMemWrite
)

var opNames = map[OpKind]string{
	OpExec: "exec", OpSend: "send", OpRecv: "recv",
	OpMaster: "master", OpWorker: "worker", OpMemWrite: "memwrite",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation of a processor's static program.
type Op struct {
	Kind OpKind
	// Node is the graph node concerned (all kinds except pure Send/Recv
	// also reference their node).
	Node graph.NodeID
	// Edge is the communication concerned (OpSend/OpRecv only).
	Edge graph.EdgeID
	// Peer is the remote processor of a Send/Recv (final destination /
	// original source — routing is transparent).
	Peer arch.ProcID
}

// Schedule is a mapped and scheduled program: the distributed executive in
// its processor-independent form (the paper's "m4 macro-code" stage).
type Schedule struct {
	Graph *graph.Graph
	Arch  *arch.Arch
	// Assign maps each node to its processor.
	Assign []arch.ProcID
	// Programs holds the ordered operation list of every processor.
	Programs [][]Op
	// Topo is the global topological order used to build the schedule
	// (shared by the timing simulator so both agree on ordering).
	Topo []graph.NodeID
	// Strategy records the distribution heuristic used.
	Strategy Strategy
}

// OpLabel is the canonical display label of a scheduled op, shared by the
// runtime tracer and the trace tooling so measured spans can be keyed back
// to the schedule. Communications are labelled by edge ("send(e3)"),
// worker spawns by "spawn(name)", memory writes by "memwrite(name)", and
// every other op by its node's name — the same label the timing simulator
// gives its predicted spans.
func (s *Schedule) OpLabel(op Op) string {
	switch op.Kind {
	case OpSend:
		return fmt.Sprintf("send(e%d)", op.Edge)
	case OpRecv:
		return fmt.Sprintf("recv(e%d)", op.Edge)
	case OpWorker:
		return "spawn(" + s.Graph.Node(op.Node).Name + ")"
	case OpMemWrite:
		return "memwrite(" + s.Graph.Node(op.Node).Name + ")"
	}
	return s.Graph.Node(op.Node).Name
}

// Map distributes the process graph over the architecture and builds the
// static schedule. It fails if the graph is invalid or the architecture is
// disconnected.
func Map(g *graph.Graph, a *arch.Arch, reg *value.Registry, strat Strategy) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("syndex: %w", err)
	}
	if !a.Connected() {
		return nil, fmt.Errorf("syndex: architecture %s is not connected", a.Name)
	}
	topo, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("syndex: %w", err)
	}
	s := &Schedule{Graph: g, Arch: a, Topo: topo, Strategy: strat}
	switch strat {
	case Structured:
		s.Assign = assignStructured(g, a)
	case ListSched:
		s.Assign = assignListSched(g, a, reg, topo)
	default:
		return nil, fmt.Errorf("syndex: unknown strategy %d", strat)
	}
	s.buildPrograms()
	if err := s.checkDeadlockFree(); err != nil {
		return nil, err
	}
	return s, nil
}

// assignStructured is the skeleton-aware placement: control and sequential
// stages on processor 0 (which owns the video I/O on Transvision), farm
// workers and scm compute nodes spread round-robin over all processors.
func assignStructured(g *graph.Graph, a *arch.Arch) []arch.ProcID {
	assign := make([]arch.ProcID, len(g.Nodes))
	// Round-robin counters per skeleton instance so each farm spreads its
	// own workers evenly starting next to the root.
	rr := map[int]int{}
	for _, n := range g.Nodes {
		switch n.Kind {
		case graph.KindWorker:
			k := rr[n.SkelID]
			rr[n.SkelID] = k + 1
			assign[n.ID] = workerProc(a, k)
		case graph.KindFunc:
			if n.SkelID >= 1 {
				// scm compute node: spread like workers.
				k := rr[n.SkelID]
				rr[n.SkelID] = k + 1
				assign[n.ID] = workerProc(a, k)
			} else {
				assign[n.ID] = 0
			}
		default:
			assign[n.ID] = 0
		}
	}
	return assign
}

// workerProc places the k-th worker: processors 1, 2, …, N-1, 0, 1, … so
// the root keeps its control load until every other processor has work.
func workerProc(a *arch.Arch, k int) arch.ProcID {
	if a.N == 1 {
		return 0
	}
	return arch.ProcID((1 + k%(a.N)) % a.N)
}

// assignListSched is a HEFT-style earliest-finish-time list scheduler using
// static cost estimates.
func assignListSched(g *graph.Graph, a *arch.Arch, reg *value.Registry, topo []graph.NodeID) []arch.ProcID {
	assign := make([]arch.ProcID, len(g.Nodes))
	ready := make([]float64, a.N) // processor available time
	finish := make([]float64, len(g.Nodes))
	for _, id := range topo {
		n := g.Node(id)
		cost := a.CycleSeconds(estCost(n, reg))
		bestProc, bestFinish := arch.ProcID(0), 0.0
		for p := 0; p < a.N; p++ {
			start := ready[p]
			for _, e := range g.InEdges(id) {
				if e.Back {
					continue
				}
				src := e.From
				arrive := finish[src]
				if assign[src] != arch.ProcID(p) {
					hops := a.Hops(assign[src], arch.ProcID(p))
					arrive += float64(hops) * a.TransferSeconds(estBytes(g.Node(src), reg))
				}
				if arrive > start {
					start = arrive
				}
			}
			f := start + cost
			if p == 0 || f < bestFinish {
				bestProc, bestFinish = arch.ProcID(p), f
			}
		}
		assign[id] = bestProc
		finish[id] = bestFinish
		ready[bestProc] = bestFinish
	}
	return assign
}

// estCost returns a node's static cycle estimate.
func estCost(n *graph.Node, reg *value.Registry) int64 {
	lookup := func(name string) int64 {
		if name == "" {
			return value.DefaultCost
		}
		if f, ok := reg.Lookup(name); ok {
			return f.EstCostOf()
		}
		return value.DefaultCost
	}
	switch n.Kind {
	case graph.KindConst, graph.KindPack, graph.KindUnpack, graph.KindMem:
		return 200 // negligible kernel bookkeeping
	case graph.KindMaster:
		return lookup(n.AccFn) * int64(max(n.Workers, 1))
	default:
		return lookup(n.Fn)
	}
}

// estBytes returns the static size estimate of a node's output message.
func estBytes(n *graph.Node, reg *value.Registry) int {
	name := n.Fn
	if n.Kind == graph.KindMaster {
		name = n.AccFn
	}
	if name != "" {
		if f, ok := reg.Lookup(name); ok {
			return f.EstBytesOf()
		}
	}
	if n.Kind == graph.KindConst {
		return value.SizeOf(n.Const)
	}
	return 64
}

// buildPrograms derives the per-processor operation lists from the global
// topological order. Receives appear in the consumer's list at the
// consumer's position, sends in the producer's list right after the
// producer executes — so on every processor the op order is consistent with
// the global order, which (with FIFO links and per-edge mailboxes) makes
// the schedule deadlock-free.
func (s *Schedule) buildPrograms() {
	g, assign := s.Graph, s.Assign
	s.Programs = make([][]Op, s.Arch.N)
	add := func(p arch.ProcID, op Op) {
		s.Programs[p] = append(s.Programs[p], op)
	}
	// Farm worker spawns must precede their master's blocking protocol op,
	// so when the master node is reached all its workers are emitted first.
	workersOf := map[graph.NodeID][]graph.NodeID{}
	masterOf := map[graph.NodeID]graph.NodeID{}
	for _, e := range g.Edges {
		from, to := g.Node(e.From), g.Node(e.To)
		if from.Kind == graph.KindMaster && to.Kind == graph.KindWorker {
			workersOf[from.ID] = append(workersOf[from.ID], to.ID)
			masterOf[to.ID] = from.ID
		}
	}
	var memWrites []Op

	for _, id := range s.Topo {
		n := g.Node(id)
		p := assign[id]
		switch n.Kind {
		case graph.KindWorker:
			// Spawned when the master is reached; nothing here.
			continue
		case graph.KindMaster:
			// Receives for xs and z first.
			s.addRecvs(add, id)
			for _, wid := range workersOf[id] {
				add(assign[wid], Op{Kind: OpWorker, Node: wid})
			}
			add(p, Op{Kind: OpMaster, Node: id})
			s.addSends(add, id)
		case graph.KindMem:
			// The read happens at the node's topological position; the
			// write of the feedback value closes the iteration.
			s.addRecvs(add, id)
			add(p, Op{Kind: OpExec, Node: id})
			s.addSends(add, id)
			memWrites = append(memWrites, Op{Kind: OpMemWrite, Node: id})
		default:
			s.addRecvs(add, id)
			add(p, Op{Kind: OpExec, Node: id})
			s.addSends(add, id)
		}
	}
	// Memory writes run after the whole iteration (their producers are the
	// last thing the loop computes; the value crosses iterations).
	for _, op := range memWrites {
		memProc := assign[op.Node]
		// If the back-edge producer lives elsewhere, its value has to be
		// shipped to the MEM's processor first.
		for _, e := range s.Graph.InEdges(op.Node) {
			if !e.Back {
				continue
			}
			srcProc := assign[e.From]
			if srcProc != memProc {
				add(srcProc, Op{Kind: OpSend, Node: e.From, Edge: e.ID, Peer: memProc})
				add(memProc, Op{Kind: OpRecv, Node: op.Node, Edge: e.ID, Peer: srcProc})
			}
		}
		add(memProc, op)
	}
}

// addRecvs emits OpRecv for every forward in-edge of id whose producer is
// remote. Back edges are handled by the MemWrite pass; intra edges are part
// of the dynamic farm protocol.
func (s *Schedule) addRecvs(add func(arch.ProcID, Op), id graph.NodeID) {
	p := s.Assign[id]
	for _, e := range s.Graph.InEdges(id) {
		if e.Back || e.Intra {
			continue
		}
		src := s.Assign[e.From]
		if s.Graph.Node(e.From).Kind == graph.KindMaster && s.Graph.Node(id).Kind == graph.KindWorker {
			continue // farm protocol edge
		}
		if src != p {
			add(p, Op{Kind: OpRecv, Node: id, Edge: e.ID, Peer: src})
		}
	}
}

// addSends emits OpSend for every forward out-edge of id whose consumer is
// remote.
func (s *Schedule) addSends(add func(arch.ProcID, Op), id graph.NodeID) {
	p := s.Assign[id]
	for _, e := range s.Graph.OutEdges(id) {
		if e.Back || e.Intra {
			continue
		}
		dst := s.Assign[e.To]
		if s.Graph.Node(id).Kind == graph.KindMaster && s.Graph.Node(e.To).Kind == graph.KindWorker {
			continue // farm protocol edge
		}
		if dst != p {
			add(p, Op{Kind: OpSend, Node: id, Edge: e.ID, Peer: dst})
		}
	}
}

// checkDeadlockFree verifies the fundamental safety property of the static
// schedule: for every statically scheduled communication, the send appears
// at a global position not later than any operation that transitively waits
// for the corresponding receive on the receiving processor. With per-edge
// mailboxes and FIFO loss-less links it suffices that (a) every OpRecv has a
// matching OpSend somewhere, and (b) on each processor, ops consistent with
// one global topological order (true by construction) — we still verify (a)
// and that no processor program receives an edge it also sends (self-talk).
func (s *Schedule) checkDeadlockFree() error {
	sends := map[graph.EdgeID]int{}
	recvs := map[graph.EdgeID]int{}
	for p, prog := range s.Programs {
		for _, op := range prog {
			switch op.Kind {
			case OpSend:
				sends[op.Edge]++
				if op.Peer == arch.ProcID(p) {
					return fmt.Errorf("syndex: processor %d sends edge %d to itself", p, op.Edge)
				}
			case OpRecv:
				recvs[op.Edge]++
			}
		}
	}
	for e, n := range recvs {
		if sends[e] != n {
			return fmt.Errorf("syndex: edge %d has %d receives but %d sends", e, n, sends[e])
		}
	}
	for e, n := range sends {
		if recvs[e] != n {
			return fmt.Errorf("syndex: edge %d has %d sends but %d receives", e, n, recvs[e])
		}
	}
	return nil
}

// Loads returns the number of compute ops per processor (for balance
// reports).
func (s *Schedule) Loads() []int {
	loads := make([]int, s.Arch.N)
	for p, prog := range s.Programs {
		for _, op := range prog {
			switch op.Kind {
			case OpExec, OpMaster, OpWorker:
				loads[p]++
			}
		}
	}
	return loads
}

// MacroCode renders the executive as processor-independent macro-code, the
// textual stage the paper lowers to m4 before inlining kernel primitives.
func (s *Schedule) MacroCode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; SKiPPER distributed executive\n")
	fmt.Fprintf(&b, "; architecture: %s, strategy: %s\n", s.Arch.Name, s.Strategy)
	for p := 0; p < s.Arch.N; p++ {
		fmt.Fprintf(&b, "processor_(%d)\n", p)
		for _, op := range s.Programs[p] {
			n := s.Graph.Node(op.Node)
			switch op.Kind {
			case OpExec:
				fn := n.Fn
				if fn == "" {
					fn = n.Kind.String()
				}
				fmt.Fprintf(&b, "  exec_(%s, %s)\n", fn, n.Name)
			case OpMaster:
				fmt.Fprintf(&b, "  master_(%s, acc=%s, workers=%d)\n", n.Name, n.AccFn, n.Workers)
			case OpWorker:
				fmt.Fprintf(&b, "  worker_(%s, comp=%s)\n", n.Name, n.Fn)
			case OpMemWrite:
				fmt.Fprintf(&b, "  memwrite_(%s)\n", n.Name)
			case OpSend:
				fmt.Fprintf(&b, "  send_(e%d, to=%d)\n", op.Edge, op.Peer)
			case OpRecv:
				fmt.Fprintf(&b, "  recv_(e%d, from=%d)\n", op.Edge, op.Peer)
			}
		}
		fmt.Fprintf(&b, "end_\n")
	}
	return b.String()
}

// Summary renders a one-line-per-processor placement report.
func (s *Schedule) Summary() string {
	byProc := make([][]string, s.Arch.N)
	for _, n := range s.Graph.Nodes {
		p := s.Assign[n.ID]
		byProc[p] = append(byProc[p], n.Name)
	}
	var b strings.Builder
	for p := 0; p < s.Arch.N; p++ {
		sort.Strings(byProc[p])
		fmt.Fprintf(&b, "P%d: %s\n", p, strings.Join(byProc[p], ", "))
	}
	return b.String()
}

// MacroCodeFiles renders the executive as one macro-code file per
// processor, the exact artifact shape the paper describes ("m4 macro-code,
// one per processor"). Keys are file names ("proc0.m4", …).
func (s *Schedule) MacroCodeFiles() map[string]string {
	files := make(map[string]string, s.Arch.N)
	for p := 0; p < s.Arch.N; p++ {
		var b strings.Builder
		fmt.Fprintf(&b, "; SKiPPER executive, processor %d of %s (%s)\n",
			p, s.Arch.Name, s.Strategy)
		fmt.Fprintf(&b, "processor_(%d)\n", p)
		for _, op := range s.Programs[p] {
			n := s.Graph.Node(op.Node)
			switch op.Kind {
			case OpExec:
				fn := n.Fn
				if fn == "" {
					fn = n.Kind.String()
				}
				fmt.Fprintf(&b, "  exec_(%s, %s)\n", fn, n.Name)
			case OpMaster:
				fmt.Fprintf(&b, "  master_(%s, acc=%s, workers=%d)\n", n.Name, n.AccFn, n.Workers)
			case OpWorker:
				fmt.Fprintf(&b, "  worker_(%s, comp=%s)\n", n.Name, n.Fn)
			case OpMemWrite:
				fmt.Fprintf(&b, "  memwrite_(%s)\n", n.Name)
			case OpSend:
				fmt.Fprintf(&b, "  send_(e%d, to=%d)\n", op.Edge, op.Peer)
			case OpRecv:
				fmt.Fprintf(&b, "  recv_(e%d, from=%d)\n", op.Edge, op.Peer)
			}
		}
		b.WriteString("end_\n")
		files[macroFileName(p)] = b.String()
	}
	return files
}
