package syndex

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// macroFileName is processor p's macro-code file (see MacroCodeFiles).
func macroFileName(p int) string { return fmt.Sprintf("proc%d.m4", p) }

// Fingerprint is a stable 64-bit digest of a deployment: the full
// macro-code (which encodes graph structure, assignment and per-processor
// programs), the architecture and the distribution strategy. Two processes
// of a distributed executive handshake with their fingerprints — equal
// fingerprints mean both compiled the same deployment, so a frame's edge
// and farm identifiers refer to the same graph objects on both sides.
func (s *Schedule) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.Arch.Name))
	h.Write([]byte{byte(s.Arch.N), byte(s.Strategy)})
	h.Write([]byte(s.MacroCode()))
	return h.Sum64()
}

// ProcManifest describes one processor's share of a deployment.
type ProcManifest struct {
	Proc    int    `json:"proc"`
	Ops     int    `json:"ops"`
	Nodes   int    `json:"nodes"`
	Program string `json:"program_file"`
}

// Manifest is the machine-readable deployment description written next to
// the macro-code files: everything a node launcher needs to start one
// skipper-node process per processor and verify they agree.
type Manifest struct {
	Architecture string         `json:"architecture"`
	Processors   int            `json:"processors"`
	Strategy     string         `json:"strategy"`
	Fingerprint  string         `json:"fingerprint"` // hex, matches handshake
	Procs        []ProcManifest `json:"procs"`
	// Launch documents the per-processor command line for a distributed
	// run ({hub} is the coordinator's listen address).
	Launch string `json:"launch"`
}

// Manifest builds the deployment manifest for this schedule.
func (s *Schedule) Manifest() Manifest {
	m := Manifest{
		Architecture: s.Arch.Name,
		Processors:   s.Arch.N,
		Strategy:     s.Strategy.String(),
		Fingerprint:  fingerprintHex(s.Fingerprint()),
		Launch:       "skipper-node -hub {hub} -proc {proc}",
	}
	assigned := make([]int, s.Arch.N)
	for _, p := range s.Assign {
		if int(p) >= 0 && int(p) < s.Arch.N {
			assigned[p]++
		}
	}
	for p := 0; p < s.Arch.N; p++ {
		m.Procs = append(m.Procs, ProcManifest{
			Proc:    p,
			Ops:     len(s.Programs[p]),
			Nodes:   assigned[p],
			Program: macroFileName(p),
		})
	}
	return m
}

// ManifestJSON renders the manifest with stable formatting.
func (s *Schedule) ManifestJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s.Manifest(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func fingerprintHex(fp uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[fp&0xf]
		fp >>= 4
	}
	return string(out)
}
