package syndex

import (
	"encoding/json"
	"testing"

	"skipper/internal/arch"
	"skipper/internal/graph"
	"skipper/internal/value"
)

// chainGraph builds a tiny linear graph f -> g with an input and output.
func chainGraph(t *testing.T) (*graph.Graph, *value.Registry) {
	t.Helper()
	g := graph.New()
	reg := value.NewRegistry()
	id := func(a []value.Value) value.Value { return a[0] }
	reg.Register(&value.Func{Name: "f", Sig: "int -> int", Arity: 1, Fn: id})
	reg.Register(&value.Func{Name: "g", Sig: "int -> int", Arity: 1, Fn: id})
	in := g.AddNode(&graph.Node{Kind: graph.KindInput, Name: "in", Fn: "f", Out: 1})
	f := g.AddNode(&graph.Node{Kind: graph.KindFunc, Name: "f", Fn: "f", In: 1, Out: 1})
	gg := g.AddNode(&graph.Node{Kind: graph.KindFunc, Name: "g", Fn: "g", In: 1, Out: 1})
	out := g.AddNode(&graph.Node{Kind: graph.KindOutput, Name: "out", In: 1})
	g.Connect(in.ID, 0, f.ID, 0, "int")
	g.Connect(f.ID, 0, gg.ID, 0, "int")
	g.Connect(gg.ID, 0, out.ID, 0, "int")
	return g, reg
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	g1, r1 := chainGraph(t)
	s1, err := Map(g1, arch.Ring(2), r1, Structured)
	if err != nil {
		t.Fatal(err)
	}
	g2, r2 := chainGraph(t)
	s2, err := Map(g2, arch.Ring(2), r2, Structured)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatal("identical deployments produced different fingerprints")
	}
	// A different architecture is a different deployment.
	g3, r3 := chainGraph(t)
	s3, err := Map(g3, arch.Ring(3), r3, Structured)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Fingerprint() == s1.Fingerprint() {
		t.Fatal("ring(2) and ring(3) deployments share a fingerprint")
	}
}

func TestManifestDescribesEveryProcessor(t *testing.T) {
	g, r := chainGraph(t)
	s, err := Map(g, arch.Ring(3), r, Structured)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Manifest()
	if m.Processors != 3 || len(m.Procs) != 3 {
		t.Fatalf("manifest covers %d/%d processors", len(m.Procs), m.Processors)
	}
	if len(m.Fingerprint) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex digits", m.Fingerprint)
	}
	totalNodes := 0
	for p, pm := range m.Procs {
		if pm.Proc != p {
			t.Fatalf("proc entry %d claims processor %d", p, pm.Proc)
		}
		if pm.Program != macroFileName(p) {
			t.Fatalf("proc %d program file %q", p, pm.Program)
		}
		totalNodes += pm.Nodes
	}
	if totalNodes != len(g.Nodes) {
		t.Fatalf("manifest accounts for %d nodes, graph has %d", totalNodes, len(g.Nodes))
	}

	data, err := s.ManifestJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest.json does not parse: %v", err)
	}
	if back.Fingerprint != m.Fingerprint {
		t.Fatal("fingerprint lost in JSON round trip")
	}
}
