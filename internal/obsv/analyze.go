package obsv

import "sort"

// OpStat aggregates the spans of one op label.
type OpStat struct {
	Label   string
	Count   int
	TotalNS int64
	MinNS   int64
	MaxNS   int64
}

// MeanNS returns the average span duration.
func (s OpStat) MeanNS() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.TotalNS / int64(s.Count)
}

// AggregateOps folds spans into per-label statistics, sorted by total time
// descending.
func AggregateOps(spans []OpSpan) []OpStat {
	byLabel := map[string]*OpStat{}
	var order []string
	for _, sp := range spans {
		st, ok := byLabel[sp.Label]
		if !ok {
			st = &OpStat{Label: sp.Label, MinNS: sp.Dur()}
			byLabel[sp.Label] = st
			order = append(order, sp.Label)
		}
		d := sp.Dur()
		st.Count++
		st.TotalNS += d
		if d < st.MinNS {
			st.MinNS = d
		}
		if d > st.MaxNS {
			st.MaxNS = d
		}
	}
	out := make([]OpStat, 0, len(order))
	for _, l := range order {
		out = append(out, *byLabel[l])
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TotalNS > out[b].TotalNS })
	return out
}

// Utilization returns each processor's busy time (union of its op spans,
// overlaps merged — a farm worker span nested in its processor's op span
// is not double-counted) and the overall timeline length.
func Utilization(spans []OpSpan, nprocs int) (busy []int64, total int64) {
	busy = make([]int64, nprocs)
	perProc := make([][]OpSpan, nprocs)
	for _, sp := range spans {
		if int(sp.Proc) < 0 || int(sp.Proc) >= nprocs {
			continue
		}
		perProc[sp.Proc] = append(perProc[sp.Proc], sp)
		if sp.End > total {
			total = sp.End
		}
	}
	for p, ss := range perProc {
		sort.SliceStable(ss, func(a, b int) bool { return ss[a].Start < ss[b].Start })
		var end int64 = -1
		var start int64
		for _, sp := range ss {
			if end < 0 || sp.Start > end {
				if end >= 0 {
					busy[p] += end - start
				}
				start, end = sp.Start, sp.End
				continue
			}
			if sp.End > end {
				end = sp.End
			}
		}
		if end >= 0 {
			busy[p] += end - start
		}
	}
	return busy, total
}

// CriticalPath extracts an approximate critical path from the spans: walk
// backwards from the span that finishes last, at each step jumping to the
// latest-finishing span that ends at or before the current one starts
// (on any processor — a cross-processor jump stands in for the message
// that carried the dependency). The result is in execution order.
func CriticalPath(spans []OpSpan) []OpSpan {
	if len(spans) == 0 {
		return nil
	}
	bySorted := append([]OpSpan(nil), spans...)
	sort.SliceStable(bySorted, func(a, b int) bool { return bySorted[a].End < bySorted[b].End })
	cur := bySorted[len(bySorted)-1]
	path := []OpSpan{cur}
	for {
		// Latest-ending span that ends at or before cur starts.
		i := sort.Search(len(bySorted), func(i int) bool { return bySorted[i].End > cur.Start })
		if i == 0 {
			break
		}
		cur = bySorted[i-1]
		path = append(path, cur)
	}
	// Reverse into chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
