package obsv

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves the observability endpoints of one executive process:
//
//	/metrics — Prometheus text exposition of the registered metrics
//	/healthz — 200 "ok" while the health func returns nil, 503 otherwise
//	/varz    — free-form JSON status (cluster view on the hub)
//
// It is deliberately tiny: std-lib net/http on a dedicated listener,
// started by distrib when a process is given a debug address.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr (e.g. "127.0.0.1:9190", port 0 picks a free one)
// and serves the debug endpoints in a background goroutine. health and
// varz may be nil.
func ServeDebug(addr string, m *Metrics, health func() error, varz func() map[string]any) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(m, health, varz), ReadHeaderTimeout: 5 * time.Second}
	s := &DebugServer{ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// DebugMux builds the debug endpoints on a fresh mux without binding a
// listener, for servers (skipper-serve) that mount them next to their own
// API routes instead of on a dedicated debug port.
func DebugMux(m *Metrics, health func() error, varz func() map[string]any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v map[string]any
		if varz != nil {
			v = varz()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	// Profiling hooks: the full net/http/pprof surface, registered
	// explicitly (the package's init only touches http.DefaultServeMux,
	// which this mux deliberately is not).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
