package obsv

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixedTrace builds a hand-written trace with deterministic timestamps, so
// exports can be compared against golden output.
func fixedTrace() *Trace {
	return &Trace{
		Schema: TraceSchema, NProcs: 2, Procs: []int{0, 1},
		EpochUnixNano: 1_000_000_000,
		Labels:        []string{"", "detect", "e7"},
		Events: []Event{
			{TS: 1000, Kind: EvOpStart, Proc: 0, Peer: -1, Label: 1, Arg: 0},
			{TS: 2000, Kind: EvSend, Proc: 0, Peer: 1, Label: 2, Arg: 64},
			{TS: 2500, Kind: EvRecv, Proc: 1, Peer: -1, Label: 2, Arg: 64},
			{TS: 2600, Kind: EvEnqueue, Proc: 1, Peer: -1, Label: 2, Arg: 1},
			{TS: 5000, Kind: EvOpEnd, Proc: 0, Peer: -1, Label: 1, Arg: 0},
		},
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(2, 8)
	lbl := r.Intern("op")
	r.Record(0, EvOpStart, lbl, -1, 3)
	r.Record(1, EvRecv, 0, -1, 128)
	r.Record(0, EvOpEnd, lbl, -1, 3)
	tr := r.Snapshot()
	if len(tr.Events) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(tr.Events))
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].TS < tr.Events[i-1].TS {
			t.Fatal("snapshot events not time-sorted")
		}
	}
	if got := tr.Label(tr.Events[0].Label); got != "op" {
		t.Fatalf("label round trip gave %q", got)
	}
	if tr.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped)
	}
}

func TestRecorderWrapDropsOldest(t *testing.T) {
	r := NewRecorder(1, 4)
	for i := 0; i < 10; i++ {
		r.Record(0, EvSend, 0, 1, int64(i))
	}
	tr := r.Snapshot()
	if len(tr.Events) != 4 {
		t.Fatalf("wrapped ring kept %d events, want 4", len(tr.Events))
	}
	if tr.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped)
	}
	// Survivors are the newest events, oldest-first.
	for i, ev := range tr.Events {
		if ev.Arg != int64(6+i) {
			t.Fatalf("event %d has arg %d, want %d", i, ev.Arg, 6+i)
		}
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Intern("x") != 0 || r.Record(0, EvSend, 0, 0, 0) != 0 || r.Dropped() != 0 || r.Now() != 0 {
		t.Fatal("nil recorder must no-op")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil recorder snapshot must be nil")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := fixedTrace()
	in.Meta = map[string]string{"app": "tracking"}
	path := filepath.Join(dir, "trace-coord.json")
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.NProcs != in.NProcs || len(out.Events) != len(in.Events) ||
		out.Meta["app"] != "tracking" || out.Labels[1] != "detect" {
		t.Fatalf("trace round trip mangled: %+v", out)
	}
	for i := range in.Events {
		if in.Events[i] != out.Events[i] {
			t.Fatalf("event %d round trip: %+v != %+v", i, in.Events[i], out.Events[i])
		}
	}
	if _, err := LoadDir(dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
}

// TestMergeAlignsClocks pins the cross-process timeline reconstruction: a
// node whose wall clock is skewed from the coordinator's is placed on the
// coordinator's timeline via its handshake-estimated ClockOffsetNS.
func TestMergeAlignsClocks(t *testing.T) {
	coord := &Trace{
		Schema: TraceSchema, NProcs: 2, Procs: []int{0},
		EpochUnixNano: 1_000_000, // coordinator epoch, its own clock is the reference
		Labels:        []string{"", "send(e1)"},
		Events:        []Event{{TS: 500, Kind: EvSend, Proc: 0, Peer: 1, Label: 1, Arg: 8}},
		Meta:          map[string]string{"app": "tracking"},
	}
	// The node's wall clock runs 300ns ahead of the coordinator's
	// (offset -300 maps node wall time onto coordinator wall time) and its
	// recorder started at node-wall 1_000_800 = coordinator-wall 1_000_500.
	node := &Trace{
		Schema: TraceSchema, NProcs: 2, Procs: []int{1},
		EpochUnixNano: 1_000_800,
		ClockOffsetNS: -300,
		Labels:        []string{"", "recv(e1)"},
		Events:        []Event{{TS: 100, Kind: EvRecv, Proc: 1, Peer: -1, Label: 1, Arg: 8}},
	}
	m := Merge([]*Trace{coord, node})
	if len(m.Events) != 2 {
		t.Fatalf("merged %d events, want 2", len(m.Events))
	}
	// Coordinator epoch (1_000_000) is the earliest aligned epoch = base.
	// Coordinator event: 0 + 500. Node event: (1_000_500 - 1_000_000) + 100.
	if m.Events[0].TS != 500 || m.Events[1].TS != 600 {
		t.Fatalf("rebased timestamps = %d, %d; want 500, 600", m.Events[0].TS, m.Events[1].TS)
	}
	if m.Events[0].Kind != EvSend || m.Events[1].Kind != EvRecv {
		t.Fatal("merge broke time ordering across processes")
	}
	if got := m.Label(m.Events[1].Label); got != "recv(e1)" {
		t.Fatalf("node label re-interned as %q", got)
	}
	if len(m.Procs) != 2 || m.Procs[0] != 0 || m.Procs[1] != 1 {
		t.Fatalf("merged procs = %v", m.Procs)
	}
	if m.Meta["app"] != "tracking" {
		t.Fatal("merge dropped the deployment meta")
	}
}

func TestOpSpansPairing(t *testing.T) {
	tr := fixedTrace()
	spans := tr.OpSpans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Label != "detect" || sp.Proc != 0 || sp.Start != 1000 || sp.End != 5000 || sp.Dur() != 4000 {
		t.Fatalf("span = %+v", sp)
	}
}

// TestChromeJSONGolden pins the trace_event export byte for byte on a
// fixed trace, and proves it parses back losslessly.
func TestChromeJSONGolden(t *testing.T) {
	data, err := fixedTrace().ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"traceEvents":[` +
		`{"name":"detect","cat":"op","ph":"X","ts":1,"dur":4,"pid":0,"tid":0},` +
		`{"name":"send e7","cat":"comm","ph":"i","ts":2,"pid":0,"tid":0,"s":"t","args":{"bytes":64,"dst":1}},` +
		`{"name":"recv e7","cat":"comm","ph":"i","ts":2.5,"pid":0,"tid":1,"s":"t","args":{"bytes":64}},` +
		`{"name":"enqueue e7","cat":"mailbox","ph":"i","ts":2.6,"pid":0,"tid":1,"s":"t","args":{"depth":1}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if string(data) != golden {
		t.Fatalf("chrome export drifted from golden:\n got: %s\nwant: %s", data, golden)
	}
	ct, err := ParseChromeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != 4 || ct.DisplayTimeUnit != "ms" {
		t.Fatalf("round trip gave %d events", len(ct.TraceEvents))
	}
	if ev := ct.TraceEvents[0]; ev.Ph != "X" || ev.Dur != 4 || ev.Name != "detect" {
		t.Fatalf("op span round trip: %+v", ev)
	}
	if ev := ct.TraceEvents[1]; ev.Args["bytes"] != 64 || ev.Args["dst"] != 1 {
		t.Fatalf("send args round trip: %+v", ev)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace-x.json")
	tr := fixedTrace()
	tr.Schema = "other/v9"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}
