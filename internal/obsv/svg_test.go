package obsv

import (
	"strings"
	"testing"
)

func TestColorForStable(t *testing.T) {
	if colorFor("detect_mark") != colorFor("detect_mark") {
		t.Fatal("color not stable")
	}
	if escapeXML("a<b>&c") != "a&lt;b&gt;&amp;c" {
		t.Fatal("escape broken")
	}
}

func TestChronogramSVGEmpty(t *testing.T) {
	if !strings.Contains(ChronogramSVG(nil, 2, 0, 200, 10), "no trace") {
		t.Fatal("placeholder missing")
	}
}

func TestChronogramSVGSpans(t *testing.T) {
	spans := []Span{
		{Proc: 0, Start: 0, End: 0.010, Label: "square"},
		{Proc: 1, Start: 0.002, End: 0.014, Label: "square"},
	}
	svg := ChronogramSVG(spans, 2, 0.014, 400, 14)
	for _, want := range []string{"<svg", "</svg>", "P0", "P1", "<title>square", "ms</text>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}
