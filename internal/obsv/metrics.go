package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// conventions: le upper bounds plus +Inf, _sum and _count series).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  int64
}

// LatencyBuckets is the default bucket layout for op latencies in seconds
// (10µs .. 1s, roughly logarithmic).
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// metric is one registered series.
type metric struct {
	name, help string

	counter   *Counter
	counterFn func() int64
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// Metrics is a minimal metric registry rendering the Prometheus text
// exposition format. Registration is done once at wiring time; reads and
// updates are lock-free on the individual metrics.
type Metrics struct {
	mu    sync.Mutex
	items []*metric
	byKey map[string]*metric
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{byKey: map[string]*metric{}}
}

func (m *Metrics) register(it *metric) *metric {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.byKey[it.name]; ok {
		return old
	}
	m.items = append(m.items, it)
	m.byKey[it.name] = it
	return it
}

// Counter registers (or returns the existing) counter with name.
func (m *Metrics) Counter(name, help string) *Counter {
	it := m.register(&metric{name: name, help: help, counter: &Counter{}})
	return it.counter
}

// Gauge registers (or returns the existing) gauge with name.
func (m *Metrics) Gauge(name, help string) *Gauge {
	it := m.register(&metric{name: name, help: help, gauge: &Gauge{}})
	return it.gauge
}

// CounterFunc registers a counter whose value is read at scrape time (for
// sources that already maintain their own atomic counters, like
// transport.Stats).
func (m *Metrics) CounterFunc(name, help string, fn func() int64) {
	m.register(&metric{name: name, help: help, counterFn: fn})
}

// GaugeFunc registers a gauge computed at scrape time.
func (m *Metrics) GaugeFunc(name, help string, fn func() float64) {
	m.register(&metric{name: name, help: help, gaugeFn: fn})
}

// Histogram registers (or returns the existing) histogram with name.
// bounds must be sorted ascending; nil uses LatencyBuckets.
func (m *Metrics) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
	it := m.register(&metric{name: name, help: help, histogram: h})
	return it.histogram
}

// StageObserver returns a per-pipeline-stage latency observer: calling the
// returned func registers (on first use) and feeds the histogram
// "<prefix><stage>_latency_seconds". Registration is idempotent, so lazy
// per-stage creation from the pipeline's stage goroutines is safe; the map
// lookup on the hot path is guarded by an RWMutex taken for read only.
func (m *Metrics) StageObserver(prefix, help string) func(stage int, seconds float64) {
	var mu sync.RWMutex
	hists := map[int]*Histogram{}
	return func(stage int, seconds float64) {
		mu.RLock()
		h := hists[stage]
		mu.RUnlock()
		if h == nil {
			mu.Lock()
			if h = hists[stage]; h == nil {
				h = m.Histogram(fmt.Sprintf("%s%d_latency_seconds", prefix, stage),
					fmt.Sprintf("%s (stage %d)", help, stage), nil)
				hists[stage] = h
			}
			mu.Unlock()
		}
		h.Observe(seconds)
	}
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (v0.0.4), in registration order.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	items := append([]*metric(nil), m.items...)
	m.mu.Unlock()
	for _, it := range items {
		typ := "gauge"
		if it.counter != nil || it.counterFn != nil {
			typ = "counter"
		}
		if it.histogram != nil {
			typ = "histogram"
		}
		if it.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", it.name, it.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", it.name, typ); err != nil {
			return err
		}
		switch {
		case it.counter != nil:
			fmt.Fprintf(w, "%s %d\n", it.name, it.counter.Value())
		case it.counterFn != nil:
			fmt.Fprintf(w, "%s %d\n", it.name, it.counterFn())
		case it.gauge != nil:
			fmt.Fprintf(w, "%s %g\n", it.name, it.gauge.Value())
		case it.gaugeFn != nil:
			fmt.Fprintf(w, "%s %g\n", it.name, it.gaugeFn())
		case it.histogram != nil:
			h := it.histogram
			h.mu.Lock()
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", it.name, formatBound(b), cum)
			}
			cum += h.counts[len(h.bounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", it.name, cum)
			fmt.Fprintf(w, "%s_sum %g\n", it.name, h.sum)
			fmt.Fprintf(w, "%s_count %d\n", it.name, h.count)
			h.mu.Unlock()
		}
	}
	return nil
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
