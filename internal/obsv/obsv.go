// Package obsv is the observability layer of the executive: a lock-light
// event recorder the Machine and both transports write into, trace export
// (Chrome trace_event JSON, measured chronogram SVG), Prometheus-style
// metrics and the debug HTTP endpoints.
//
// The recorder is built for the executive's hot path: one ring buffer per
// processor, fixed-size event structs, a single atomic add to reserve a
// slot, timestamps from the monotonic clock and interned string labels —
// no allocation per event. A nil *Recorder is valid everywhere and every
// recording call on it compiles down to one branch, so instrumented code
// pays nothing when tracing is off.
//
// The package deliberately depends only on the standard library: it sits
// below transport, exec, sim and distrib, all of which feed it.
package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind enumerates the recorded event types.
type EventKind uint8

const (
	// EvOpStart/EvOpEnd bracket one executive operation (or one farm-worker
	// task computation); Arg carries the iteration (or task index).
	EvOpStart EventKind = iota + 1
	EvOpEnd
	// EvSend/EvRecv are transport-level message injection and delivery;
	// Arg carries the payload size in bytes, Peer the destination (send)
	// processor.
	EvSend
	EvRecv
	// EvEnqueue is a mailbox delivery; Arg carries the queue depth after
	// the append.
	EvEnqueue
	// EvPark/EvWake bracket a blocking mailbox receive.
	EvPark
	EvWake
	// EvAbort marks a transport failure-driven abort.
	EvAbort
	// EvPeerDown marks the detected death of a remote process: Proc is the
	// processor declared dead, recorded by each surviving process when its
	// transport surfaces the failure.
	EvPeerDown
	// EvRedispatch marks a farm master re-enqueueing a task whose worker
	// died or whose deadline fired; Proc is the master's processor, Arg the
	// task index.
	EvRedispatch
	// EvDegrade marks a farm task exhausting its retry budget: the run is
	// about to fail rather than re-dispatch again. Arg is the task index.
	EvDegrade
	// EvCancel marks a caller-initiated abort of the executive (DELETE on a
	// serve job, Machine.Cancel).
	EvCancel
	// EvRequeue marks the serve scheduler re-running a job from scratch
	// after a worker death; Arg is the attempt number being retired.
	EvRequeue
	// EvBatchFlush marks the writer goroutine coalescing queued frames into
	// one batch write; Arg is the number of sub-frames in the batch.
	EvBatchFlush
	// EvRingOcc samples a shm slab-ring's occupancy after a write; Arg is
	// the number of occupied bytes in the ring.
	EvRingOcc
	// EvDoorbell marks a shm doorbell actually ringing (the armed-sleep flag
	// was set and a wake byte was written); Arg counts rings since the
	// connection opened.
	EvDoorbell
	// EvStageHand marks a pipelined itermem stage finishing its op block for
	// one frame and handing the baton on; Peer is the stage index, Arg the
	// iteration, and the event's TS minus the previous stage's hand-off
	// yields the per-stage frame latency.
	EvStageHand
	// EvSpeculate marks a farm master duplicating a slow task onto an idle
	// worker (DESIGN.md §16): the original worker is not suspected dead, the
	// first valid same-generation reply will win. Proc is the master's
	// processor, Peer the processor the duplicate was placed on, Arg the
	// task index. Appended after the fault range EvAbort..EvRequeue —
	// speculation is proactive straggler mitigation, not a failure signal,
	// so it must not trigger flight-recorder dumps.
	EvSpeculate
	// EvSpecWin marks a speculative duplicate's reply arriving before the
	// original's — the duplication paid off. Proc is the master's processor,
	// Peer the winning worker's processor, Arg the task index.
	EvSpecWin
)

var kindNames = [...]string{
	EvOpStart: "op-start", EvOpEnd: "op-end",
	EvSend: "send", EvRecv: "recv",
	EvEnqueue: "enqueue", EvPark: "park", EvWake: "wake",
	EvAbort:    "abort",
	EvPeerDown: "peer-down", EvRedispatch: "redispatch",
	EvDegrade: "degrade", EvCancel: "cancel", EvRequeue: "requeue",
	EvBatchFlush: "batch-flush", EvRingOcc: "ring-occ",
	EvDoorbell: "doorbell", EvStageHand: "stage-hand",
	EvSpeculate: "speculate", EvSpecWin: "spec-win",
}

// IsFault reports whether k is one of the failure-signal kinds that the
// flight recorder treats as a dump trigger. The fault kinds occupy a
// contiguous range so the recorder's hot path pays two compares.
func (k EventKind) IsFault() bool { return k >= EvAbort && k <= EvRequeue }

func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one fixed-size trace record. TS is nanoseconds since the
// recorder's epoch on the local monotonic clock; Label indexes the
// recorder's interned label table; Peer is the counterpart processor of a
// communication (-1 when not applicable); Arg is kind-specific (bytes,
// queue depth, iteration).
type Event struct {
	TS    int64     `json:"ts"`
	Arg   int64     `json:"a"`
	Label uint32    `json:"l"`
	Proc  int32     `json:"p"`
	Peer  int32     `json:"q"`
	Kind  EventKind `json:"k"`
}

// procRing is one processor's event ring. The write index is reserved with
// a single atomic add, so several goroutines running on behalf of the same
// processor (its op loop, its farm workers, a router delivering into its
// mailbox) can record concurrently without excluding each other; when the
// ring wraps the oldest events are overwritten and counted as dropped.
type procRing struct {
	n    atomic.Uint64
	mask uint64
	ev   []Event
}

// DefaultRingSize is the per-processor event capacity (power of two).
const DefaultRingSize = 1 << 16

// Recorder collects events for the processors of one OS process.
type Recorder struct {
	epoch     time.Time
	epochUnix int64
	rings     []procRing
	faultHook atomic.Pointer[func(EventKind)]

	// ringMu is a turnstile between live recording and ring copies:
	// Record holds the read side (shared, an uncontended atomic in the
	// common case), Snapshot the write side. Without it a flight dump or
	// live job-trace snapshot racing the hot path could copy a
	// half-stored event.
	ringMu sync.RWMutex

	mu       sync.Mutex
	labels   []string
	labelIdx map[string]uint32
}

// NewRecorder builds a recorder for procs processors with the given
// per-processor ring capacity (rounded up to a power of two; <= 0 uses
// DefaultRingSize).
func NewRecorder(procs, capacity int) *Recorder {
	if procs < 1 {
		procs = 1
	}
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	now := time.Now()
	r := &Recorder{
		epoch:     now,
		epochUnix: now.UnixNano(),
		rings:     make([]procRing, procs),
		labels:    []string{""},
		labelIdx:  map[string]uint32{"": 0},
	}
	for i := range r.rings {
		r.rings[i].ev = make([]Event, size)
		r.rings[i].mask = uint64(size - 1)
	}
	return r
}

// Intern returns the stable id of label, registering it on first use. Safe
// for concurrent use; a nil recorder returns 0. Not for per-event hot
// paths — intern once and reuse the id (see transport.KeyLabels).
func (r *Recorder) Intern(label string) uint32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.labelIdx[label]; ok {
		return id
	}
	id := uint32(len(r.labels))
	r.labels = append(r.labels, label)
	r.labelIdx[label] = id
	return id
}

// Record appends one event to proc's ring and returns its timestamp
// (nanoseconds since the recorder epoch). The hot path: one monotonic
// clock read, the shared side of the snapshot turnstile, one atomic add,
// one struct store — no allocation, and the only blocking is against an
// in-flight Snapshot. A nil recorder records nothing and returns 0.
func (r *Recorder) Record(proc int32, kind EventKind, label uint32, peer int32, arg int64) int64 {
	if r == nil {
		return 0
	}
	ts := int64(time.Since(r.epoch))
	ring := &r.rings[0]
	if proc >= 0 && int(proc) < len(r.rings) {
		ring = &r.rings[proc]
	}
	r.ringMu.RLock()
	i := ring.n.Add(1) - 1
	ring.ev[i&ring.mask] = Event{TS: ts, Kind: kind, Proc: proc, Peer: peer, Label: label, Arg: arg}
	r.ringMu.RUnlock()
	if kind.IsFault() {
		if hook := r.faultHook.Load(); hook != nil {
			(*hook)(kind)
		}
	}
	return ts
}

// SetFaultHook installs fn to be called (on the recording goroutine)
// whenever a fault-kind event lands in the ring. The flight recorder uses
// it to trigger an asynchronous auto-dump; fn must therefore be cheap and
// non-blocking. A nil recorder ignores the call; fn == nil clears the hook.
func (r *Recorder) SetFaultHook(fn func(EventKind)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.faultHook.Store(nil)
		return
	}
	r.faultHook.Store(&fn)
}

// Now returns nanoseconds since the recorder epoch (0 for a nil recorder),
// for callers that need a timestamp consistent with recorded events.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Dropped reports how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var d int64
	for i := range r.rings {
		n := r.rings[i].n.Load()
		if c := uint64(len(r.rings[i].ev)); n > c {
			d += int64(n - c)
		}
	}
	return d
}

// Snapshot copies the recorded events into a Trace, globally sorted by
// timestamp. Safe on a live recorder — the flight recorder and serve's
// mid-run job traces depend on that — though events recorded while the
// copy holds the turnstile land after it and are simply not included.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	tr := &Trace{
		Schema:        TraceSchema,
		NProcs:        len(r.rings),
		EpochUnixNano: r.epochUnix,
		Dropped:       r.Dropped(),
	}
	r.mu.Lock()
	tr.Labels = append([]string(nil), r.labels...)
	r.mu.Unlock()
	r.ringMu.Lock()
	for i := range r.rings {
		ring := &r.rings[i]
		n := ring.n.Load()
		c := uint64(len(ring.ev))
		if n <= c {
			tr.Events = append(tr.Events, ring.ev[:n]...)
			continue
		}
		// Wrapped: oldest surviving event first.
		start := n & ring.mask
		tr.Events = append(tr.Events, ring.ev[start:]...)
		tr.Events = append(tr.Events, ring.ev[:start]...)
	}
	r.ringMu.Unlock()
	sort.SliceStable(tr.Events, func(a, b int) bool { return tr.Events[a].TS < tr.Events[b].TS })
	return tr
}
