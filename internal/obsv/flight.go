package obsv

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is the always-on flight recorder: it owns a bounded Recorder ring
// that instrumented code writes into at all times, and when a fault-kind
// event lands (peer-down, redispatch, degrade, cancel, requeue, abort) it
// dumps the ring's last-Window worth of events to disk as a trace artifact
// — the raw trace JSON, the Chrome trace, and the measured chronogram SVG —
// so every failure ships with its timeline attached, without anyone having
// restarted the process with tracing flags.
//
// Dumps run on a dedicated goroutine (the recording hot path only does a
// non-blocking channel send) and are rate-limited: at most one dump per
// MinInterval, so a fault storm produces one artifact, not thousands.
type Flight struct {
	rec  *Recorder
	dir  string
	name string

	// Window trims the dump to the trailing window of the ring (0 keeps
	// everything the ring still holds).
	window time.Duration
	// minInterval rate-limits dumping (default 5s).
	minInterval time.Duration

	// extra, when set, is invoked at dump time to collect companion traces
	// (e.g. the serve hub attaching the per-attempt session recorders) to
	// merge into the artifact alongside the flight ring.
	extra func() []*Trace

	trigger  chan EventKind
	done     chan struct{}
	lastDump atomic.Int64 // unix nanos of the last dump
	seq      atomic.Int64 // artifact sequence number

	mu        sync.Mutex
	lastPaths []string
	closed    bool
}

// FlightOptions tunes a flight recorder; the zero value is usable.
type FlightOptions struct {
	// Procs/RingSize size the underlying Recorder. Procs <= 0 defaults to
	// 1; RingSize <= 0 defaults to 1<<12 (a bounded always-on cost, much
	// smaller than DefaultRingSize).
	Procs    int
	RingSize int
	// Window trims dumps to the trailing window (default 10s; negative
	// keeps the whole ring).
	Window time.Duration
	// MinInterval rate-limits dumps (default 5s).
	MinInterval time.Duration
	// Extra collects companion traces to merge into each dump.
	Extra func() []*Trace
}

// FlightRingSize is the default per-processor ring capacity of an
// always-on flight recorder: big enough for several seconds of executive
// traffic, small enough (96B * 4096 per proc) to leave resident.
const FlightRingSize = 1 << 12

// NewFlight creates the flight recorder, arms its fault hook and starts
// the dump goroutine. dir is created on demand at the first dump; name
// tags artifact filenames (e.g. the worker name or "serve").
func NewFlight(dir, name string, opt FlightOptions) *Flight {
	procs := opt.Procs
	if procs <= 0 {
		procs = 1
	}
	ring := opt.RingSize
	if ring <= 0 {
		ring = FlightRingSize
	}
	window := opt.Window
	if window == 0 {
		window = 10 * time.Second
	}
	minInt := opt.MinInterval
	if minInt <= 0 {
		minInt = 5 * time.Second
	}
	f := &Flight{
		rec:         NewRecorder(procs, ring),
		dir:         dir,
		name:        name,
		window:      window,
		minInterval: minInt,
		extra:       opt.Extra,
		trigger:     make(chan EventKind, 1),
		done:        make(chan struct{}),
	}
	f.rec.SetFaultHook(f.Trigger)
	go f.loop()
	return f
}

// Trigger requests an asynchronous, rate-limited dump, exactly as if a
// fault-kind event had landed in the flight ring. Companion recorders (a
// traced job's dedicated ring) route their fault hooks here so their
// faults also produce artifacts. Cheap and non-blocking.
func (f *Flight) Trigger(k EventKind) {
	select {
	case f.trigger <- k:
	default: // a dump is already pending; coalesce
	}
}

// Recorder exposes the underlying ring for instrumented code to arm
// (transport TraceSink, Machine.Trace). Never nil.
func (f *Flight) Recorder() *Recorder { return f.rec }

// Dump forces an artifact dump now (bypassing the rate limit) and returns
// the paths written. Used by tests and by operators poking a live process.
func (f *Flight) Dump(reason EventKind) ([]string, error) {
	return f.dump(reason, true)
}

// LastDump returns the file paths of the most recent artifact (nil if no
// dump has fired yet).
func (f *Flight) LastDump() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.lastPaths...)
}

// Close stops the dump goroutine. Pending triggers are dropped.
func (f *Flight) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.done)
}

func (f *Flight) loop() {
	for {
		select {
		case <-f.done:
			return
		case k := <-f.trigger:
			f.dump(k, false)
		}
	}
}

// dump snapshots the ring (plus companion traces), trims to the window and
// writes the three artifact files. force bypasses the rate limit.
func (f *Flight) dump(reason EventKind, force bool) ([]string, error) {
	now := time.Now().UnixNano()
	if !force {
		last := f.lastDump.Load()
		if last != 0 && now-last < int64(f.minInterval) {
			return nil, nil
		}
	}
	f.lastDump.Store(now)

	traces := []*Trace{f.rec.Snapshot()}
	if f.extra != nil {
		for _, t := range f.extra() {
			if t != nil {
				traces = append(traces, t)
			}
		}
	}
	tr := Merge(traces)
	if tr == nil {
		return nil, nil
	}
	if f.window > 0 {
		trimTrailing(tr, f.window)
	}
	if tr.Meta == nil {
		tr.Meta = map[string]string{}
	}
	tr.Meta["flight_reason"] = reason.String()
	tr.Meta["flight_name"] = f.name

	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return nil, err
	}
	seq := f.seq.Add(1)
	stem := filepath.Join(f.dir, fmt.Sprintf("flight-%s-%03d-%s", f.name, seq, reason))
	var paths []string

	if err := tr.WriteFile(stem + ".json"); err != nil {
		return nil, err
	}
	paths = append(paths, stem+".json")
	if data, err := tr.ChromeJSON(); err == nil {
		if err := os.WriteFile(stem+".chrome.json", data, 0o644); err == nil {
			paths = append(paths, stem+".chrome.json")
		}
	}
	if err := os.WriteFile(stem+".svg", []byte(tr.ChronogramSVG(1200, 22)), 0o644); err == nil {
		paths = append(paths, stem+".svg")
	}

	f.mu.Lock()
	f.lastPaths = paths
	f.mu.Unlock()
	return paths, nil
}

// trimTrailing drops events older than window before the trace's last
// event, keeping the artifact to the fault's immediate past.
func trimTrailing(t *Trace, window time.Duration) {
	if len(t.Events) == 0 {
		return
	}
	cut := t.Events[len(t.Events)-1].TS - int64(window)
	if cut <= t.Events[0].TS {
		return
	}
	// Events are sorted by TS; find the first survivor.
	lo, hi := 0, len(t.Events)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.Events[mid].TS < cut {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t.Events = append([]Event(nil), t.Events[lo:]...)
}
