package obsv

import (
	"fmt"
	"strings"
)

// Span is one activity interval on a processor lane, in seconds. Both the
// predicted chronogram (internal/sim's virtual-time spans) and the
// measured one (OpSpans from a runtime trace) are rendered through this
// type, so the two diagrams share one renderer and can sit side by side.
type Span struct {
	Proc       int
	Start, End float64
	Label      string
}

// Mark is a point event drawn on a chronogram lane as a colored vertical
// tick: a peer death, a task re-dispatch, an abort. T is in seconds on the
// same timeline as the spans.
type Mark struct {
	Proc  int
	T     float64
	Label string
	Color string
}

// ChronogramSVG renders activity spans as a standalone SVG Gantt chart:
// one lane per processor, colored blocks per activity, a millisecond axis
// along the bottom. total is the timeline length in seconds; lanes the
// number of processor rows.
func ChronogramSVG(spans []Span, lanes int, total float64, width, laneHeight int) string {
	return ChronogramSVGMarked(spans, nil, lanes, total, width, laneHeight)
}

// ChronogramSVGMarked is ChronogramSVG plus point-event markers overlaid on
// the lanes (drawn after the spans, so a fault tick stays visible on top of
// the activity block it interrupted).
func ChronogramSVGMarked(spans []Span, marks []Mark, lanes int, total float64, width, laneHeight int) string {
	if width < 100 {
		width = 100
	}
	if laneHeight < 8 {
		laneHeight = 8
	}
	const (
		leftMargin = 46
		topMargin  = 20
		axisHeight = 28
	)
	height := topMargin + lanes*laneHeight + axisHeight
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`,
		width+leftMargin+10, height)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`,
		width+leftMargin+10, height)
	b.WriteString("\n")
	if total <= 0 || len(spans) == 0 {
		b.WriteString(`<text x="10" y="20">(no trace recorded)</text></svg>`)
		return b.String()
	}
	// Lane backgrounds and labels.
	for p := 0; p < lanes; p++ {
		y := topMargin + p*laneHeight
		fill := "#f4f4f4"
		if p%2 == 1 {
			fill = "#eaeaea"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`,
			leftMargin, y, width, laneHeight, fill)
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="4" y="%d">P%d</text>`, y+laneHeight-2, p)
		b.WriteString("\n")
	}
	// Spans, colored deterministically by label.
	for _, sp := range spans {
		x := leftMargin + int(sp.Start/total*float64(width))
		w := int((sp.End - sp.Start) / total * float64(width))
		if w < 1 {
			w = 1
		}
		y := topMargin + sp.Proc*laneHeight
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s %.2f–%.2f ms</title></rect>`,
			x, y+1, w, laneHeight-2, colorFor(sp.Label), escapeXML(sp.Label),
			sp.Start*1000, sp.End*1000)
		b.WriteString("\n")
	}
	// Point-event markers: full-lane vertical ticks over the spans.
	for _, mk := range marks {
		if mk.Proc < 0 || mk.Proc >= lanes {
			continue
		}
		x := leftMargin + int(mk.T/total*float64(width))
		y := topMargin + mk.Proc*laneHeight
		color := mk.Color
		if color == "" {
			color = "#d62728"
		}
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="2" height="%d" fill="%s"><title>%s %.2f ms</title></rect>`,
			x, y, laneHeight, color, escapeXML(mk.Label), mk.T*1000)
		b.WriteString("\n")
	}
	// Axis: 5 ticks.
	axisY := topMargin + lanes*laneHeight
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		leftMargin, axisY, leftMargin+width, axisY)
	b.WriteString("\n")
	for i := 0; i <= 5; i++ {
		x := leftMargin + i*width/5
		ms := total * 1000 * float64(i) / 5
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
			x, axisY, x, axisY+4)
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%d" y="%d">%.0fms</text>`, x-10, axisY+16, ms)
		b.WriteString("\n")
	}
	b.WriteString("</svg>")
	return b.String()
}

// ChronogramSVG renders the trace's measured op spans through the shared
// chronogram renderer, so predicted (sim) and measured diagrams are
// directly comparable. Fault events (peer deaths, task re-dispatches) are
// overlaid as vertical ticks on the affected lanes.
func (t *Trace) ChronogramSVG(width, laneHeight int) string {
	ops := t.OpSpans()
	spans := make([]Span, 0, len(ops))
	var total float64
	for _, sp := range ops {
		s := Span{
			Proc:  int(sp.Proc),
			Start: float64(sp.Start) / 1e9,
			End:   float64(sp.End) / 1e9,
			Label: sp.Label,
		}
		spans = append(spans, s)
		if s.End > total {
			total = s.End
		}
	}
	var marks []Mark
	for _, ev := range t.Events {
		var color string
		switch ev.Kind {
		case EvPeerDown:
			color = "#d62728" // red: a processor died here
		case EvRedispatch:
			color = "#ff7f0e" // orange: its work re-enqueued here
		case EvSpeculate:
			color = "#9467bd" // purple: a slow task duplicated onto an idle worker
		case EvSpecWin:
			color = "#2ca02c" // green: the duplicate's reply won the race
		default:
			continue
		}
		mk := Mark{
			Proc:  int(ev.Proc),
			T:     float64(ev.TS) / 1e9,
			Label: ev.Kind.String(),
			Color: color,
		}
		marks = append(marks, mk)
		if mk.T > total {
			total = mk.T
		}
	}
	lanes := t.NProcs
	if lanes == 0 {
		for _, s := range spans {
			if s.Proc+1 > lanes {
				lanes = s.Proc + 1
			}
		}
	}
	return ChronogramSVGMarked(spans, marks, lanes, total, width, laneHeight)
}

// colorFor assigns a stable pastel color per activity label.
func colorFor(label string) string {
	palette := []string{
		"#7eb0d5", "#b2e061", "#bd7ebe", "#ffb55a", "#ffee65",
		"#beb9db", "#fdcce5", "#8bd3c7", "#fd7f6f",
	}
	h := 0
	for i := 0; i < len(label); i++ {
		h = h*31 + int(label[i])
	}
	if h < 0 {
		h = -h
	}
	return palette[h%len(palette)]
}

func escapeXML(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
