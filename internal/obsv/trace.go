package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// TraceSchema versions the on-disk trace format.
const TraceSchema = "skipper-trace/v1"

// Trace is a recorder snapshot in exportable form: the event stream of one
// process (or, after Merge, a whole deployment) plus everything needed to
// interpret it — the label table, the wall-clock epoch and the clock
// offset that aligns this process's monotonic timeline with the
// coordinator's.
type Trace struct {
	Schema string `json:"schema"`
	// NProcs is the architecture size; Procs lists the processors this
	// process hosted (all of them after a merge).
	NProcs int   `json:"nprocs"`
	Procs  []int `json:"procs,omitempty"`
	// EpochUnixNano anchors event timestamps (nanoseconds since epoch on
	// the local monotonic clock) to the local wall clock.
	EpochUnixNano int64 `json:"epoch_unix_nano"`
	// ClockOffsetNS, added to a local wall-clock instant, yields the
	// coordinator's wall clock: the NTP-style offset each node estimates
	// from its hub handshake (0 on the coordinator itself). Merge uses it
	// to place every process's events on one timeline.
	ClockOffsetNS int64             `json:"clock_offset_ns"`
	Dropped       int64             `json:"dropped"`
	Labels        []string          `json:"labels"`
	Meta          map[string]string `json:"meta,omitempty"`
	Events        []Event           `json:"events"`
}

// Label resolves an event's label id.
func (t *Trace) Label(id uint32) string {
	if int(id) < len(t.Labels) {
		return t.Labels[id]
	}
	return fmt.Sprintf("label(%d)", id)
}

// WriteFile marshals the trace as JSON to path.
func (t *Trace) WriteFile(path string) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads one trace file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("obsv: %s: %w", path, err)
	}
	if t.Schema != TraceSchema {
		return nil, fmt.Errorf("obsv: %s: unsupported trace schema %q (want %q)", path, t.Schema, TraceSchema)
	}
	return &t, nil
}

// LoadDir reads every per-process trace file ("trace-*.json") in dir and
// merges them onto the coordinator's timeline.
func LoadDir(dir string) (*Trace, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "trace-*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("obsv: no trace-*.json files in %s", dir)
	}
	sort.Strings(paths)
	traces := make([]*Trace, 0, len(paths))
	for _, p := range paths {
		t, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		traces = append(traces, t)
	}
	return Merge(traces), nil
}

// Merge combines per-process traces into one deployment-wide trace.
// Every event timestamp is rebased onto a shared timeline: local monotonic
// time is anchored to the local wall clock via EpochUnixNano, shifted onto
// the coordinator's wall clock via ClockOffsetNS, and finally rebased so
// the earliest aligned epoch is 0.
func Merge(traces []*Trace) *Trace {
	if len(traces) == 0 {
		return nil
	}
	if len(traces) == 1 && traces[0].ClockOffsetNS == 0 {
		return traces[0]
	}
	base := traces[0].EpochUnixNano + traces[0].ClockOffsetNS
	for _, t := range traces[1:] {
		if e := t.EpochUnixNano + t.ClockOffsetNS; e < base {
			base = e
		}
	}
	out := &Trace{Schema: TraceSchema, EpochUnixNano: base}
	procSet := map[int]bool{}
	labelID := map[string]uint32{}
	out.Labels = []string{""}
	labelID[""] = 0
	intern := func(s string) uint32 {
		if id, ok := labelID[s]; ok {
			return id
		}
		id := uint32(len(out.Labels))
		out.Labels = append(out.Labels, s)
		labelID[s] = id
		return id
	}
	for _, t := range traces {
		if t.NProcs > out.NProcs {
			out.NProcs = t.NProcs
		}
		out.Dropped += t.Dropped
		for _, p := range t.Procs {
			procSet[p] = true
		}
		if out.Meta == nil && len(t.Meta) > 0 {
			out.Meta = t.Meta
		}
		shift := t.EpochUnixNano + t.ClockOffsetNS - base
		for _, ev := range t.Events {
			ev.TS += shift
			ev.Label = intern(t.Label(ev.Label))
			out.Events = append(out.Events, ev)
		}
	}
	for p := range procSet {
		out.Procs = append(out.Procs, p)
	}
	sort.Ints(out.Procs)
	sort.SliceStable(out.Events, func(a, b int) bool { return out.Events[a].TS < out.Events[b].TS })
	return out
}

// OpSpan is one completed op interval reconstructed from an
// EvOpStart/EvOpEnd pair.
type OpSpan struct {
	Proc       int32
	Label      string
	Start, End int64 // ns on the trace timeline
	Arg        int64 // iteration / task index from the start event
}

// Dur returns the span length in nanoseconds.
func (s OpSpan) Dur() int64 { return s.End - s.Start }

type spanKey struct {
	proc  int32
	label uint32
}

// OpSpans pairs the trace's op-start/op-end events into spans, ordered by
// start time. Starts without a matching end (a processor cut down
// mid-operation) are dropped.
func (t *Trace) OpSpans() []OpSpan {
	open := map[spanKey][]Event{}
	var spans []OpSpan
	for _, ev := range t.Events {
		switch ev.Kind {
		case EvOpStart:
			k := spanKey{ev.Proc, ev.Label}
			open[k] = append(open[k], ev)
		case EvOpEnd:
			k := spanKey{ev.Proc, ev.Label}
			st := open[k]
			if len(st) == 0 {
				continue // end without start (start fell out of the ring)
			}
			s := st[len(st)-1]
			open[k] = st[:len(st)-1]
			spans = append(spans, OpSpan{
				Proc: ev.Proc, Label: t.Label(ev.Label),
				Start: s.TS, End: ev.TS, Arg: s.Arg,
			})
		}
	}
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
	return spans
}

// ChromeEvent is one entry of a Chrome trace_event JSON file
// (chrome://tracing, Perfetto). Timestamps and durations are microseconds.
type ChromeEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat,omitempty"`
	Ph    string           `json:"ph"`
	TS    float64          `json:"ts"`
	Dur   float64          `json:"dur,omitempty"`
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object envelope Chrome's trace viewer loads.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON renders the trace in Chrome trace_event format: complete "X"
// events for op spans (tid = processor) and instant "i" events for sends,
// receives, enqueues and aborts, with byte sizes in args.
func (t *Trace) ChromeJSON() ([]byte, error) {
	ct := t.chrome()
	data, err := json.Marshal(ct)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ChromeJSONAttempts renders several traces — the per-attempt timelines of
// one serve job — into a single Chrome trace file, one process row (pid)
// per attempt, so a requeued job shows both its timelines side by side.
// Nil entries (attempts that produced no trace) are skipped but keep their
// pid slot, so pid always equals the attempt index.
func ChromeJSONAttempts(attempts []*Trace) ([]byte, error) {
	ct := &ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	for i, t := range attempts {
		if t == nil {
			continue
		}
		t.chromeInto(ct, i)
	}
	data, err := json.Marshal(ct)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func (t *Trace) chrome() *ChromeTrace {
	ct := &ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	t.chromeInto(ct, 0)
	return ct
}

// chromeInto appends this trace's events to ct under the given chrome
// process id (one pid per job attempt in the multi-attempt export).
func (t *Trace) chromeInto(ct *ChromeTrace, pid int) {
	for _, sp := range t.OpSpans() {
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: sp.Label, Cat: "op", Ph: "X",
			TS: float64(sp.Start) / 1e3, Dur: float64(sp.End-sp.Start) / 1e3,
			PID: pid, TID: int(sp.Proc),
		})
	}
	for _, ev := range t.Events {
		var cat string
		args := map[string]int64{}
		switch ev.Kind {
		case EvSend:
			cat = "comm"
			args["bytes"] = ev.Arg
			args["dst"] = int64(ev.Peer)
		case EvRecv:
			cat = "comm"
			args["bytes"] = ev.Arg
		case EvEnqueue:
			cat = "mailbox"
			args["depth"] = ev.Arg
		case EvAbort:
			cat = "abort"
		case EvPeerDown:
			cat = "fault"
		case EvRedispatch:
			cat = "fault"
			args["task"] = ev.Arg
		case EvDegrade:
			cat = "fault"
			args["task"] = ev.Arg
		case EvCancel:
			cat = "fault"
		case EvRequeue:
			cat = "fault"
			args["attempt"] = ev.Arg
		case EvBatchFlush:
			cat = "telemetry"
			args["frames"] = ev.Arg
		case EvRingOcc:
			cat = "telemetry"
			args["occupied"] = ev.Arg
		case EvDoorbell:
			cat = "telemetry"
			args["rings"] = ev.Arg
		case EvStageHand:
			cat = "pipeline"
			args["stage"] = int64(ev.Peer)
			args["iter"] = ev.Arg
		case EvSpeculate:
			cat = "speculation"
			args["task"] = ev.Arg
			args["dup_on"] = int64(ev.Peer)
		case EvSpecWin:
			cat = "speculation"
			args["task"] = ev.Arg
			args["winner"] = int64(ev.Peer)
		default:
			continue
		}
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: ev.Kind.String() + " " + t.Label(ev.Label), Cat: cat, Ph: "i",
			TS: float64(ev.TS) / 1e3, PID: pid, TID: int(ev.Proc), Scope: "t",
			Args: args,
		})
	}
}

// ParseChromeJSON loads a Chrome trace_event JSON file back into its
// envelope form (for round-trip validation).
func ParseChromeJSON(data []byte) (*ChromeTrace, error) {
	var ct ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return nil, fmt.Errorf("obsv: chrome trace: %w", err)
	}
	return &ct, nil
}
