package obsv

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// waitDump polls until the flight recorder reports a dump or the deadline
// passes (dumps happen on the flight's own goroutine).
func waitDump(t *testing.T, f *Flight) []string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if paths := f.LastDump(); len(paths) > 0 {
			return paths
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("flight recorder never dumped")
	return nil
}

// TestFlightAutoDumpOnFault pins the tentpole behavior: a fault-kind event
// landing in the always-on ring auto-dumps a trace artifact — raw JSON,
// Chrome JSON and chronogram SVG — with the fault's immediate past in it,
// no restart, no tracing flag.
func TestFlightAutoDumpOnFault(t *testing.T) {
	dir := t.TempDir()
	f := NewFlight(dir, "w1", FlightOptions{Procs: 2, MinInterval: time.Hour})
	defer f.Close()
	rec := f.Recorder()

	lbl := rec.Intern("grab")
	for i := 0; i < 50; i++ {
		rec.Record(0, EvOpStart, lbl, -1, int64(i))
		rec.Record(0, EvOpEnd, lbl, -1, int64(i))
	}
	rec.Record(1, EvPeerDown, 0, 0, 0) // fault: must trigger the dump

	paths := waitDump(t, f)
	if len(paths) != 3 {
		t.Fatalf("dump wrote %d artifacts (%v), want raw+chrome+svg", len(paths), paths)
	}
	var raw, chrome, svg string
	for _, p := range paths {
		switch {
		case strings.HasSuffix(p, ".chrome.json"):
			chrome = p
		case strings.HasSuffix(p, ".json"):
			raw = p
		case strings.HasSuffix(p, ".svg"):
			svg = p
		}
	}
	if raw == "" || chrome == "" || svg == "" {
		t.Fatalf("artifact set incomplete: %v", paths)
	}

	tr, err := ReadFile(raw)
	if err != nil {
		t.Fatalf("raw artifact unreadable: %v", err)
	}
	if tr.Meta["flight_reason"] != "peer-down" || tr.Meta["flight_name"] != "w1" {
		t.Fatalf("artifact meta %v missing flight tags", tr.Meta)
	}
	var sawFault, sawOp bool
	for _, ev := range tr.Events {
		if ev.Kind == EvPeerDown {
			sawFault = true
		}
		if ev.Kind == EvOpStart {
			sawOp = true
		}
	}
	if !sawFault || !sawOp {
		t.Fatalf("artifact lost events: fault=%v ops=%v", sawFault, sawOp)
	}

	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var ct map[string]any
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("chrome artifact is not JSON: %v", err)
	}
	if svgData, err := os.ReadFile(svg); err != nil || !strings.Contains(string(svgData), "<svg") {
		t.Fatalf("svg artifact bad: err=%v", err)
	}
}

// TestFlightRateLimit pins that a fault storm produces one artifact per
// MinInterval, not one per fault.
func TestFlightRateLimit(t *testing.T) {
	f := NewFlight(t.TempDir(), "w1", FlightOptions{MinInterval: time.Hour})
	defer f.Close()
	rec := f.Recorder()

	rec.Record(0, EvAbort, 0, -1, 0)
	first := waitDump(t, f)

	for i := 0; i < 20; i++ {
		rec.Record(0, EvPeerDown, 0, -1, int64(i))
	}
	time.Sleep(50 * time.Millisecond)
	after := f.LastDump()
	if len(after) != len(first) || after[0] != first[0] {
		t.Fatalf("fault storm broke the rate limit: %v then %v", first, after)
	}
	if f.seq.Load() != 1 {
		t.Fatalf("rate-limited storm wrote %d dumps", f.seq.Load())
	}
}

// TestFlightExtraMergesCompanions pins that companion traces (a traced
// job's recorder on the same process) ride along in the artifact.
func TestFlightExtraMergesCompanions(t *testing.T) {
	comp := NewRecorder(1, 0)
	f := NewFlight(t.TempDir(), "serve", FlightOptions{
		Extra: func() []*Trace { return []*Trace{comp.Snapshot()} },
	})
	defer f.Close()

	lbl := comp.Intern("track")
	comp.Record(0, EvOpStart, lbl, -1, 7)
	comp.Record(0, EvOpEnd, lbl, -1, 7)

	paths, err := f.Dump(EvRequeue) // forced dump, no fault needed
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range tr.Events {
		if ev.Kind == EvOpStart && tr.Label(ev.Label) == "track" {
			found = true
		}
	}
	if !found {
		t.Fatal("companion trace's events missing from the artifact")
	}
}

// TestFlightWindowTrims pins that dumps keep only the trailing window.
func TestFlightWindowTrims(t *testing.T) {
	f := NewFlight(t.TempDir(), "w1", FlightOptions{Window: 10 * time.Millisecond})
	defer f.Close()
	rec := f.Recorder()

	rec.Record(0, EvOpStart, 0, -1, 1)
	time.Sleep(50 * time.Millisecond)
	rec.Record(0, EvOpEnd, 0, -1, 1)
	rec.Record(0, EvPeerDown, 0, -1, 0)

	paths := waitDump(t, f)
	tr, err := ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if ev.Kind == EvOpStart {
			t.Fatal("event older than the window survived the trim")
		}
	}
}

// TestFaultHookFiresOnFaultKindsOnly pins the Recorder-side trigger: the
// hook must fire for every kind in the fault range and never otherwise.
func TestFaultHookFiresOnFaultKindsOnly(t *testing.T) {
	rec := NewRecorder(1, 64)
	var got []EventKind
	rec.SetFaultHook(func(k EventKind) { got = append(got, k) })

	rec.Record(0, EvOpStart, 0, -1, 0)
	rec.Record(0, EvSend, 0, 1, 8)
	rec.Record(0, EvBatchFlush, 0, -1, 3)
	rec.Record(0, EvStageHand, 0, 1, 5)
	if len(got) != 0 {
		t.Fatalf("hook fired on non-fault kinds: %v", got)
	}
	faults := []EventKind{EvAbort, EvPeerDown, EvRedispatch, EvDegrade, EvCancel, EvRequeue}
	for _, k := range faults {
		rec.Record(0, k, 0, -1, 0)
	}
	if len(got) != len(faults) {
		t.Fatalf("hook fired %d times for %d fault kinds", len(got), len(faults))
	}
	rec.SetFaultHook(nil)
	rec.Record(0, EvAbort, 0, -1, 0)
	if len(got) != len(faults) {
		t.Fatal("cleared hook still fired")
	}
}
