package skipper

import (
	"strings"
	"testing"

	"skipper/internal/track"
	"skipper/internal/video"
)

// newTrackingSetup compiles the paper's tracking application over a fresh
// synthetic scene (each path needs its own registry: the registered
// functions are stateful, like the paper's C functions with static
// variables).
func newTrackingSetup(t *testing.T, nproc, w, h, vehicles int, seed int64) (*Program, *track.Recorder) {
	t.Helper()
	scene := video.NewScene(w, h, vehicles, seed)
	reg, rec := track.NewRegistry(scene, nil)
	prog, err := Compile(track.ProgramSource(nproc, w, h), reg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, rec
}

func TestCompilePaperApplication(t *testing.T) {
	prog, _ := newTrackingSetup(t, 8, 512, 512, 1, 1)
	if !prog.Stream {
		t.Fatal("tracking application is a stream program")
	}
	if ty, ok := prog.TypeOf("loop"); !ok || ty != "state * img -> state * mark list" {
		t.Fatalf("loop : %q", ty)
	}
	if ty, ok := prog.TypeOf("main"); !ok || ty != "unit" {
		t.Fatalf("main : %q", ty)
	}
	dot := prog.DOT("tracking")
	if !strings.Contains(dot, "Worker<detect_mark>") || !strings.Contains(dot, "MEM") {
		t.Fatal("DOT missing expected nodes")
	}
}

func TestEmulationTracksVehicle(t *testing.T) {
	prog, rec := newTrackingSetup(t, 8, 256, 256, 1, 3)
	if err := prog.Emulate(30); err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != 30 {
		t.Fatalf("got %d results", len(rec.Results))
	}
	locked := 0
	for _, r := range rec.Results {
		if r.Tracking {
			locked++
		}
	}
	if locked < 20 {
		t.Fatalf("locked only %d/30 iterations", locked)
	}
}

func TestExecutiveMatchesEmulation(t *testing.T) {
	// Experiment E4: the sequential emulation and the parallel executive
	// compute identical results on the same input stream.
	const iters = 20
	emuProg, emuRec := newTrackingSetup(t, 8, 192, 192, 2, 7)
	if err := emuProg.Emulate(iters); err != nil {
		t.Fatal(err)
	}

	parProg, parRec := newTrackingSetup(t, 8, 192, 192, 2, 7)
	dep, err := parProg.MapOnto(Ring(8), Structured)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Run(iters); err != nil {
		t.Fatal(err)
	}

	if len(emuRec.Results) != len(parRec.Results) {
		t.Fatalf("result counts: emu %d, par %d", len(emuRec.Results), len(parRec.Results))
	}
	for i := range emuRec.Results {
		a, b := emuRec.Results[i], parRec.Results[i]
		if a.Tracking != b.Tracking || a.Vehicles != b.Vehicles || len(a.Marks) != len(b.Marks) {
			t.Fatalf("iteration %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.Marks {
			if a.Marks[j].CX != b.Marks[j].CX || a.Marks[j].CY != b.Marks[j].CY {
				t.Fatalf("iteration %d mark %d diverged", i, j)
			}
		}
	}
}

func TestSimulatorMatchesEmulation(t *testing.T) {
	const iters = 15
	emuProg, emuRec := newTrackingSetup(t, 8, 192, 192, 1, 9)
	if err := emuProg.Emulate(iters); err != nil {
		t.Fatal(err)
	}
	simProg, simRec := newTrackingSetup(t, 8, 192, 192, 1, 9)
	dep, err := simProg.MapOnto(Ring(8), Structured)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Simulate(SimOptions{Iters: iters}); err != nil {
		t.Fatal(err)
	}
	if len(emuRec.Results) != len(simRec.Results) {
		t.Fatalf("result counts: emu %d, sim %d", len(emuRec.Results), len(simRec.Results))
	}
	for i := range emuRec.Results {
		if emuRec.Results[i].Vehicles != simRec.Results[i].Vehicles {
			t.Fatalf("iteration %d diverged", i)
		}
	}
}

func TestPaperLatencyEnvelope(t *testing.T) {
	// Experiment E1 (smoke version; the full table lives in the harness):
	// 8 T9000s, 512x512 @ 25 Hz, three lead vehicles (9 windows of
	// interest in tracking). Paper: tracking ≈ 30 ms, reinit ≈ 110 ms.
	prog, rec := newTrackingSetup(t, 8, 512, 512, 3, 3)
	dep, err := prog.MapOnto(Ring(8), Structured)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Simulate(SimOptions{Iters: 30, FramePeriod: VideoPeriod})
	if err != nil {
		t.Fatal(err)
	}
	var trackLat, reinitLat []float64
	for i, r := range rec.Results {
		if i >= len(res.Iters) {
			break
		}
		if r.Tracking {
			trackLat = append(trackLat, res.Iters[i].Latency)
		} else {
			reinitLat = append(reinitLat, res.Iters[i].Latency)
		}
	}
	if len(trackLat) == 0 || len(reinitLat) == 0 {
		t.Fatalf("phases missing: track=%d reinit=%d", len(trackLat), len(reinitLat))
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	tr, re := mean(trackLat), mean(reinitLat)
	t.Logf("tracking %.1f ms, reinit %.1f ms, skipped %d frames",
		tr*1000, re*1000, res.FramesSkipped)
	// Paper: 30 ms and 110 ms. Accept the right decade and ordering.
	if tr < 0.010 || tr > 0.060 {
		t.Fatalf("tracking latency %.1f ms outside [10,60] ms", tr*1000)
	}
	if re < 0.060 || re > 0.180 {
		t.Fatalf("reinit latency %.1f ms outside [60,180] ms", re*1000)
	}
	if re < 2*tr {
		t.Fatalf("reinit (%.1f ms) should dominate tracking (%.1f ms)", re*1000, tr*1000)
	}
}

func TestMacroCodeAndSummary(t *testing.T) {
	prog, _ := newTrackingSetup(t, 4, 128, 128, 1, 1)
	dep, err := prog.MapOnto(Ring(4), Structured)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep.MacroCode(), "master_(") {
		t.Fatal("macro-code missing master op")
	}
	if !strings.Contains(dep.Summary(), "P0:") {
		t.Fatal("summary missing placement")
	}
}

func TestConstProgramRejectedForDeployment(t *testing.T) {
	prog, err := Compile("let main = 1 + 2;;", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.MapOnto(Ring(2), Structured); err == nil ||
		!strings.Contains(err.Error(), "folded to the constant") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("let main = ;;", NewRegistry()); err == nil {
		t.Fatal("syntax error not surfaced")
	}
	if _, err := Compile("let main = nope;;", NewRegistry()); err == nil {
		t.Fatal("type error not surfaced")
	}
}
