// Command skipper-run executes the built-in vehicle tracking application
// (paper §4) through the full SKiPPER pipeline, on either the goroutine
// executive (real parallel execution) or the Transvision timing simulator.
//
// Usage:
//
//	skipper-run [-backend exec|sim] [-transport mem|tcp] [-procs 8]
//	            [-iters 50] [-size 512] [-vehicles 3] [-seed 3]
//	            [-topology ring]
//
// With -transport=tcp the executive really runs as N OS processes: this
// process hosts processor 0 and the routing hub, and one skipper-node
// child process is spawned per remaining processor (the skipper-node
// binary is looked up next to skipper-run, then on PATH).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"skipper"
	"skipper/internal/distrib"
	"skipper/internal/track"
	"skipper/internal/video"
)

func main() {
	backend := flag.String("backend", "exec", "execution backend: exec (goroutines) or sim (timing model)")
	transportFlag := flag.String("transport", "mem", "with -backend exec: mem (in-process) or tcp (one OS process per processor)")
	procs := flag.Int("procs", 8, "number of processors (and df workers)")
	iters := flag.Int("iters", 50, "stream iterations")
	size := flag.Int("size", 512, "frame width and height")
	vehicles := flag.Int("vehicles", 3, "lead vehicles (1-3)")
	seed := flag.Int64("seed", 3, "synthetic scene seed")
	topology := flag.String("topology", "ring", "ring, chain, star or full")
	trace := flag.Bool("trace", false, "with -backend sim: print the per-processor chronogram")
	svgPath := flag.String("svg", "", "with -trace: also write an SVG chronogram to this file")
	flag.Parse()

	if *backend == "exec" && *transportFlag == "tcp" {
		runTCP(*procs, *iters, *size, *vehicles, *seed, *topology)
		return
	}
	if *transportFlag != "mem" && *transportFlag != "tcp" {
		fatal(fmt.Errorf("unknown transport %q", *transportFlag))
	}

	scene := video.NewScene(*size, *size, *vehicles, *seed)
	reg, rec := track.NewRegistry(scene, os.Stdout)
	prog, err := skipper.Compile(track.ProgramSource(*procs, *size, *size), reg)
	if err != nil {
		fatal(err)
	}
	var a *skipper.Arch
	switch *topology {
	case "ring":
		a = skipper.Ring(*procs)
	case "chain":
		a = skipper.Chain(*procs)
	case "star":
		a = skipper.Star(*procs)
	case "full":
		a = skipper.Full(*procs)
	default:
		fatal(fmt.Errorf("unknown topology %q", *topology))
	}
	dep, err := prog.MapOnto(a, skipper.Structured)
	if err != nil {
		fatal(err)
	}

	switch *backend {
	case "exec":
		if _, err := dep.Run(*iters); err != nil {
			fatal(err)
		}
	case "sim":
		res, err := dep.Simulate(skipper.SimOptions{
			Iters: *iters, FramePeriod: skipper.VideoPeriod, Trace: *trace,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s, %d iterations at 25 Hz:\n", a.Name, *iters)
		fmt.Printf("  mean latency : %6.1f ms\n", res.MeanLatency(2)*1000)
		fmt.Printf("  max latency  : %6.1f ms\n", res.MaxLatency(2)*1000)
		fmt.Printf("  frames skipped: %d\n", res.FramesSkipped)
		if *trace {
			fmt.Println()
			fmt.Print(res.Chronogram(100))
			if *svgPath != "" {
				if err := os.WriteFile(*svgPath, []byte(res.ChronogramSVG(900, 16)), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("chronogram written to %s\n", *svgPath)
			}
		}
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	locked := 0
	for _, r := range rec.Results {
		if r.Tracking {
			locked++
		}
	}
	fmt.Printf("\n%d iterations, %d in tracking phase (%.0f%%)\n",
		len(rec.Results), locked, 100*float64(locked)/float64(max(len(rec.Results), 1)))
}

// runTCP executes the tracking deployment as N communicating OS processes
// on localhost: processor 0 plus the hub here, one spawned skipper-node
// per remaining processor.
func runTCP(procs, iters, size int, vehicles int, seed int64, topology string) {
	nodeBin, err := findNodeBinary()
	if err != nil {
		fatal(err)
	}
	sp := distrib.Spec{
		Topology: topology, Procs: procs,
		Width: size, Height: size,
		Vehicles: vehicles, Seed: seed, Iters: iters,
	}
	var children []*exec.Cmd
	spawn := func(addr string) error {
		for p := 1; p < procs; p++ {
			cmd := exec.Command(nodeBin,
				"-hub", addr,
				"-proc", strconv.Itoa(p),
				"-procs", strconv.Itoa(procs),
				"-iters", strconv.Itoa(iters),
				"-size", strconv.Itoa(size),
				"-vehicles", strconv.Itoa(vehicles),
				"-seed", strconv.FormatInt(seed, 10),
				"-topology", topology,
			)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return err
			}
			children = append(children, cmd)
		}
		return nil
	}
	rec, res, err := distrib.RunCoordinator(sp, "127.0.0.1:0", spawn, 5*time.Minute)
	for _, c := range children {
		if werr := c.Wait(); werr != nil && err == nil {
			err = fmt.Errorf("node process %v: %w", c.Args[2:4], werr)
		}
	}
	if err != nil {
		fatal(err)
	}
	locked := 0
	for _, r := range rec.Results {
		if r.Tracking {
			locked++
		}
	}
	fmt.Printf("%d processors as OS processes over TCP, %d messages from coordinator\n",
		procs, res.Messages)
	fmt.Printf("\n%d iterations, %d in tracking phase (%.0f%%)\n",
		len(rec.Results), locked, 100*float64(locked)/float64(max(len(rec.Results), 1)))
}

// findNodeBinary locates skipper-node: next to this executable first, then
// on PATH.
func findNodeBinary() (string, error) {
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "skipper-node")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("skipper-node"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("skipper-node binary not found next to skipper-run or on PATH (build it with: go build ./cmd/skipper-node)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skipper-run:", err)
	os.Exit(1)
}
