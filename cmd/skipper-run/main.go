// Command skipper-run executes the built-in vehicle tracking application
// (paper §4) through the full SKiPPER pipeline, on either the goroutine
// executive (real parallel execution) or the Transvision timing simulator.
//
// Usage:
//
//	skipper-run [-backend exec|sim] [-transport mem|tcp|unix|shm] [-procs 8]
//	            [-iters 50] [-size 512] [-vehicles 3] [-seed 3]
//	            [-topology ring] [-pipeline] [-trace dir]
//	            [-debug-addr host:port]
//	            [-max-retries n] [-task-deadline d] [-heartbeat d]
//	            [-speculate-after d]
//	            [-chaos-kill-proc p] [-chaos-kill-after n]
//	            [-chaos-slow-proc p] [-chaos-slow-every n] [-chaos-slow-for d]
//	            [topology(procs)]
//
// The optional positional argument names the architecture compactly:
// "ring(8)" is shorthand for -topology ring -procs 8.
//
// With -transport=tcp, unix or shm the executive really runs as N
// OS processes: this process hosts processor 0 and the routing hub, and
// one skipper-node child process is spawned per remaining processor (the
// skipper-node binary is looked up next to skipper-run, then on PATH).
// tcp talks over localhost sockets; unix uses unix-domain sockets for hub
// and peer mesh — the same-host fast path (DESIGN.md §12); shm upgrades
// every peer connection to an mmap'd slab ring and keeps the sockets as
// doorbells (DESIGN.md §14).
//
// -pipeline software-pipelines the itermem loop: frame k+1's grab and
// preprocessing overlap frame k's farm and merge, with bit-identical
// outputs (DESIGN.md §12).
//
// -trace=<dir> records an event trace of the run: each process writes its
// trace-*.json file into dir, and afterwards the merged trace is exported
// as chrome-trace.json (load it in chrome://tracing or Perfetto) and
// chronogram-measured.svg — the measured counterpart of the simulator's
// predicted chronogram (compare them with skipper-trace -compare). With
// -backend=sim the predicted chronogram SVG is written there instead.
//
// -debug-addr serves /metrics (Prometheus text), /healthz and /varz for
// the duration of the run.
//
// -max-retries enables farm fault tolerance (DESIGN.md §11): when a node
// hosting only farm workers dies mid-run, its in-flight tasks are
// re-dispatched on the survivors and the run completes without it.
// -task-deadline additionally catches workers that hang without dying;
// -heartbeat arms control-plane liveness probes. -speculate-after arms
// straggler speculation (DESIGN.md §16): a task unanswered that long is
// duplicated onto an idle worker and the first reply wins, without
// declaring the slow worker dead. -chaos-kill-proc runs a fault-injection
// drill: the named node process severs itself mid-run (after
// -chaos-kill-after sends) exactly like a crash. -chaos-slow-proc runs the
// straggler drill instead: the named node stays alive but delays every
// -chaos-slow-every'th send by -chaos-slow-for.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"skipper"
	"skipper/internal/distrib"
	"skipper/internal/obsv"
	"skipper/internal/track"
	"skipper/internal/video"
)

func main() {
	// Deployment and executive flags come from the shared distrib set, so
	// skipper-run, skipper-node and skipper-serve cannot drift apart again.
	shared := distrib.FlagSet(flag.CommandLine)
	backend := flag.String("backend", "exec", "execution backend: exec (goroutines) or sim (timing model)")
	transportFlag := flag.String("transport", "mem", "with -backend exec: mem (in-process), tcp, unix or shm (one OS process per processor)")
	svgPath := flag.String("svg", "", "with -backend sim -trace: also write the predicted SVG chronogram to this file")
	chaosKillProc := flag.Int("chaos-kill-proc", 0, "chaos drill, with -transport tcp: sever this node processor mid-run (0 disables)")
	chaosKillAfter := flag.Int("chaos-kill-after", 2, "chaos drill: how many frames the victim sends before it is severed")
	chaosSlowProc := flag.Int("chaos-slow-proc", 0, "chaos drill, with -transport tcp/unix/shm: make this node processor a straggler (0 disables)")
	chaosSlowEvery := flag.Int("chaos-slow-every", 1, "chaos drill: delay every Nth frame the straggler sends")
	chaosSlowFor := flag.Duration("chaos-slow-for", 200*time.Millisecond, "chaos drill: how long the straggler delays each scripted send")
	flag.Parse()

	if flag.NArg() > 0 {
		if err := parseTopologyArg(flag.Arg(0), shared.Topology, shared.Procs); err != nil {
			fatal(err)
		}
	}

	sp := shared.Spec()
	if *backend == "exec" && (*transportFlag == "tcp" || *transportFlag == "unix" || *transportFlag == "shm") {
		if *transportFlag == "shm" && sp.DataPlane == "" {
			sp.DataPlane = "shm"
		}
		runMulti(sp, *transportFlag, *chaosKillProc, *chaosKillAfter,
			*chaosSlowProc, *chaosSlowEvery, *chaosSlowFor)
		return
	}
	if *chaosKillProc != 0 {
		fatal(fmt.Errorf("-chaos-kill-proc needs a real node process to kill (use -transport tcp, unix or shm)"))
	}
	if *chaosSlowProc != 0 {
		fatal(fmt.Errorf("-chaos-slow-proc needs a real node process to slow (use -transport tcp, unix or shm)"))
	}
	if *transportFlag != "mem" {
		fatal(fmt.Errorf("unknown transport %q", *transportFlag))
	}
	// Tracing, metrics, deterministic accumulation and the pipelined
	// executive all run through the distrib in-process path, which knows
	// how to arm them.
	if *backend == "exec" && (sp.TraceDir != "" || sp.DebugAddr != "" || sp.Pipeline || sp.Deterministic) {
		runMemObserved(sp)
		return
	}

	scene := video.NewScene(sp.Width, sp.Height, sp.Vehicles, sp.Seed)
	reg, rec := track.NewRegistry(scene, os.Stdout)
	prog, err := skipper.Compile(track.ProgramSource(sp.Procs, sp.Width, sp.Height), reg)
	if err != nil {
		fatal(err)
	}
	var a *skipper.Arch
	switch sp.Topology {
	case "ring":
		a = skipper.Ring(sp.Procs)
	case "chain":
		a = skipper.Chain(sp.Procs)
	case "star":
		a = skipper.Star(sp.Procs)
	case "full":
		a = skipper.Full(sp.Procs)
	default:
		fatal(fmt.Errorf("unknown topology %q", sp.Topology))
	}
	dep, err := prog.MapOnto(a, skipper.Structured)
	if err != nil {
		fatal(err)
	}

	switch *backend {
	case "exec":
		if _, err := dep.Run(sp.Iters); err != nil {
			fatal(err)
		}
	case "sim":
		doTrace := sp.TraceDir != "" || *svgPath != ""
		res, err := dep.Simulate(skipper.SimOptions{
			Iters: sp.Iters, FramePeriod: skipper.VideoPeriod, Trace: doTrace,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s, %d iterations at 25 Hz:\n", a.Name, sp.Iters)
		fmt.Printf("  mean latency : %6.1f ms\n", res.MeanLatency(2)*1000)
		fmt.Printf("  max latency  : %6.1f ms\n", res.MaxLatency(2)*1000)
		fmt.Printf("  frames skipped: %d\n", res.FramesSkipped)
		if doTrace {
			fmt.Println()
			fmt.Print(res.Chronogram(100))
			svg := res.ChronogramSVG(900, 16)
			if sp.TraceDir != "" {
				if err := os.MkdirAll(sp.TraceDir, 0o755); err != nil {
					fatal(err)
				}
				out := filepath.Join(sp.TraceDir, "chronogram-predicted.svg")
				if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("predicted chronogram written to %s\n", out)
			}
			if *svgPath != "" {
				if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("chronogram written to %s\n", *svgPath)
			}
		}
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	printTrackingSummary(rec)
}

// parseTopologyArg accepts "ring(8)" or plain "ring" and overrides the
// -topology/-procs flags accordingly.
func parseTopologyArg(arg string, topology *string, procs *int) error {
	name := arg
	if i := strings.IndexByte(arg, '('); i >= 0 {
		if !strings.HasSuffix(arg, ")") {
			return fmt.Errorf("malformed topology %q (want e.g. ring(8))", arg)
		}
		n, err := strconv.Atoi(arg[i+1 : len(arg)-1])
		if err != nil || n < 1 {
			return fmt.Errorf("malformed processor count in %q", arg)
		}
		*procs = n
		name = arg[:i]
	}
	switch name {
	case "ring", "chain", "star", "full":
		*topology = name
		return nil
	}
	return fmt.Errorf("unknown topology %q", name)
}

func printTrackingSummary(rec *track.Recorder) {
	locked := 0
	for _, r := range rec.Results {
		if r.Tracking {
			locked++
		}
	}
	fmt.Printf("\n%d iterations, %d in tracking phase (%.0f%%)\n",
		len(rec.Results), locked, 100*float64(locked)/float64(max(len(rec.Results), 1)))
}

// exportTrace merges the per-process trace files in dir into the Chrome
// trace and measured-chronogram artifacts.
func exportTrace(dir string) {
	tr, err := obsv.LoadDir(dir)
	if err != nil {
		fatal(err)
	}
	data, err := tr.ChromeJSON()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "chrome-trace.json"), data, 0o644); err != nil {
		fatal(err)
	}
	svg := tr.ChronogramSVG(900, 16)
	if err := os.WriteFile(filepath.Join(dir, "chronogram-measured.svg"), []byte(svg), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("trace: %d events from %d processors in %s (chrome-trace.json, chronogram-measured.svg)\n",
		len(tr.Events), len(tr.Procs), dir)
}

// runMemObserved executes the in-process deployment with tracing and/or the
// debug endpoint armed, via the same distrib path the TCP deployment uses.
func runMemObserved(sp distrib.Spec) {
	rec, _, err := distrib.RunInProcess(sp, 5*time.Minute)
	if err != nil {
		fatal(err)
	}
	if sp.TraceDir != "" {
		exportTrace(sp.TraceDir)
	}
	printTrackingSummary(rec)
}

// runMulti executes the tracking deployment as N communicating OS
// processes on this host — over localhost TCP or unix-domain sockets per
// transport — with processor 0 plus the hub here and one spawned
// skipper-node per remaining processor. chaosKillProc, when non-zero,
// scripts a chaos drill: that node process is spawned with
// -die-after-sends so it severs itself mid-run, and the run must degrade
// (or, with -max-retries, finish) without it. chaosSlowProc scripts the
// straggler drill instead: the node stays alive but delays its sends, the
// scenario -speculate-after exists for.
func runMulti(sp distrib.Spec, transport string, chaosKillProc, chaosKillAfter,
	chaosSlowProc, chaosSlowEvery int, chaosSlowFor time.Duration) {
	nodeBin, err := findNodeBinary()
	if err != nil {
		fatal(err)
	}
	listen, cleanup, err := distrib.HubListenAddr(transport)
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	if chaosKillProc != 0 && (chaosKillProc < 1 || chaosKillProc >= sp.Procs) {
		fatal(fmt.Errorf("-chaos-kill-proc %d outside node range 1..%d", chaosKillProc, sp.Procs-1))
	}
	if chaosSlowProc != 0 && (chaosSlowProc < 1 || chaosSlowProc >= sp.Procs) {
		fatal(fmt.Errorf("-chaos-slow-proc %d outside node range 1..%d", chaosSlowProc, sp.Procs-1))
	}
	var children []*exec.Cmd
	spawn := func(addr string) error {
		for p := 1; p < sp.Procs; p++ {
			args := []string{
				"-hub", addr,
				"-proc", strconv.Itoa(p),
				"-procs", strconv.Itoa(sp.Procs),
				"-iters", strconv.Itoa(sp.Iters),
				"-size", strconv.Itoa(sp.Width),
				"-vehicles", strconv.Itoa(sp.Vehicles),
				"-seed", strconv.FormatInt(sp.Seed, 10),
				"-topology", sp.Topology,
			}
			if sp.TraceDir != "" {
				args = append(args, "-trace", sp.TraceDir)
			}
			if sp.Pipeline {
				args = append(args, "-pipeline")
			}
			if sp.PipelineDepth != 0 {
				args = append(args, "-pipeline-depth", strconv.Itoa(sp.PipelineDepth))
			}
			if sp.DataPlane != "" {
				// The plane must reach every process: a node left on "auto"
				// would negotiate plain unix while its peers offer rings.
				args = append(args, "-data-plane", sp.DataPlane)
			}
			if sp.Deterministic {
				// The flag must reach every process: deterministic farm
				// accumulation only reproduces when the whole deployment
				// agrees on it.
				args = append(args, "-deterministic")
			}
			if sp.MaxRetries > 0 {
				args = append(args, "-max-retries", strconv.Itoa(sp.MaxRetries))
			}
			if sp.TaskDeadline > 0 {
				args = append(args, "-task-deadline", sp.TaskDeadline.String())
			}
			if sp.Heartbeat > 0 {
				args = append(args, "-heartbeat", sp.Heartbeat.String())
			}
			if sp.SpeculateAfter != 0 {
				// Reaches every node for completeness; only the master's
				// process (the coordinator, here) acts on it.
				args = append(args, "-speculate-after", sp.SpeculateAfter.String())
			}
			if p == chaosKillProc {
				args = append(args, "-die-after-sends", strconv.Itoa(chaosKillAfter))
			}
			if p == chaosSlowProc && chaosSlowEvery > 0 && chaosSlowFor > 0 {
				args = append(args,
					"-slow-every-nth", strconv.Itoa(chaosSlowEvery),
					"-slow-for", chaosSlowFor.String())
			}
			cmd := exec.Command(nodeBin, args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return err
			}
			children = append(children, cmd)
		}
		return nil
	}
	rec, res, err := distrib.RunCoordinator(sp, listen, spawn, 5*time.Minute)
	for i, c := range children {
		werr := c.Wait()
		if werr != nil && i+1 == chaosKillProc {
			continue // the scripted victim is supposed to die
		}
		if werr != nil && err == nil {
			err = fmt.Errorf("node process %v: %w", c.Args[2:4], werr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if sp.TraceDir != "" {
		exportTrace(sp.TraceDir)
	}
	fmt.Printf("%d processors as OS processes over %s, %d messages from coordinator\n",
		sp.Procs, transport, res.Messages)
	if sp.MaxRetries > 0 || chaosKillProc != 0 {
		fmt.Printf("fault tolerance: %d peer failure(s), %d task re-dispatch(es)\n",
			res.Failures, res.Redispatches)
	}
	if res.Speculations > 0 || chaosSlowProc != 0 {
		fmt.Printf("speculation: %d duplicate(s), %d win(s), %d false suspicion(s)\n",
			res.Speculations, res.SpeculationWins, res.FalseSuspicions)
	}
	printTrackingSummary(rec)
}

// findNodeBinary locates skipper-node: next to this executable first, then
// on PATH.
func findNodeBinary() (string, error) {
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "skipper-node")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("skipper-node"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("skipper-node binary not found next to skipper-run or on PATH (build it with: go build ./cmd/skipper-node)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skipper-run:", err)
	os.Exit(1)
}
