// Command skipper-run executes the built-in vehicle tracking application
// (paper §4) through the full SKiPPER pipeline, on either the goroutine
// executive (real parallel execution) or the Transvision timing simulator.
//
// Usage:
//
//	skipper-run [-backend exec|sim] [-procs 8] [-iters 50]
//	            [-size 512] [-vehicles 3] [-seed 3] [-topology ring]
package main

import (
	"flag"
	"fmt"
	"os"

	"skipper"
	"skipper/internal/track"
	"skipper/internal/video"
)

func main() {
	backend := flag.String("backend", "exec", "execution backend: exec (goroutines) or sim (timing model)")
	procs := flag.Int("procs", 8, "number of processors (and df workers)")
	iters := flag.Int("iters", 50, "stream iterations")
	size := flag.Int("size", 512, "frame width and height")
	vehicles := flag.Int("vehicles", 3, "lead vehicles (1-3)")
	seed := flag.Int64("seed", 3, "synthetic scene seed")
	topology := flag.String("topology", "ring", "ring, chain, star or full")
	trace := flag.Bool("trace", false, "with -backend sim: print the per-processor chronogram")
	svgPath := flag.String("svg", "", "with -trace: also write an SVG chronogram to this file")
	flag.Parse()

	scene := video.NewScene(*size, *size, *vehicles, *seed)
	reg, rec := track.NewRegistry(scene, os.Stdout)
	prog, err := skipper.Compile(track.ProgramSource(*procs, *size, *size), reg)
	if err != nil {
		fatal(err)
	}
	var a *skipper.Arch
	switch *topology {
	case "ring":
		a = skipper.Ring(*procs)
	case "chain":
		a = skipper.Chain(*procs)
	case "star":
		a = skipper.Star(*procs)
	case "full":
		a = skipper.Full(*procs)
	default:
		fatal(fmt.Errorf("unknown topology %q", *topology))
	}
	dep, err := prog.MapOnto(a, skipper.Structured)
	if err != nil {
		fatal(err)
	}

	switch *backend {
	case "exec":
		if _, err := dep.Run(*iters); err != nil {
			fatal(err)
		}
	case "sim":
		res, err := dep.Simulate(skipper.SimOptions{
			Iters: *iters, FramePeriod: skipper.VideoPeriod, Trace: *trace,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s, %d iterations at 25 Hz:\n", a.Name, *iters)
		fmt.Printf("  mean latency : %6.1f ms\n", res.MeanLatency(2)*1000)
		fmt.Printf("  max latency  : %6.1f ms\n", res.MaxLatency(2)*1000)
		fmt.Printf("  frames skipped: %d\n", res.FramesSkipped)
		if *trace {
			fmt.Println()
			fmt.Print(res.Chronogram(100))
			if *svgPath != "" {
				if err := os.WriteFile(*svgPath, []byte(res.ChronogramSVG(900, 16)), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("chronogram written to %s\n", *svgPath)
			}
		}
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	locked := 0
	for _, r := range rec.Results {
		if r.Tracking {
			locked++
		}
	}
	fmt.Printf("\n%d iterations, %d in tracking phase (%.0f%%)\n",
		len(rec.Results), locked, 100*float64(locked)/float64(max(len(rec.Results), 1)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skipper-run:", err)
	os.Exit(1)
}
