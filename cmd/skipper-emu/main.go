// Command skipper-emu runs the built-in vehicle tracking application
// through SKiPPER's *sequential emulation* path: the specification is
// interpreted against the declarative skeleton definitions, calling the
// registered sequential functions directly. This is the paper's debugging
// workflow — "the possibility to emulate the parallel code on a sequential
// workstation … has proven to be a very useful approach" (§4).
//
// Usage:
//
//	skipper-emu [-iters 50] [-size 512] [-vehicles 3] [-seed 3] [-procs 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"skipper"
	"skipper/internal/track"
	"skipper/internal/video"
)

func main() {
	iters := flag.Int("iters", 50, "stream iterations")
	size := flag.Int("size", 512, "frame width and height")
	vehicles := flag.Int("vehicles", 3, "lead vehicles (1-3)")
	seed := flag.Int64("seed", 3, "synthetic scene seed")
	procs := flag.Int("procs", 8, "df worker count in the specification")
	flag.Parse()

	scene := video.NewScene(*size, *size, *vehicles, *seed)
	reg, rec := track.NewRegistry(scene, os.Stdout)
	prog, err := skipper.Compile(track.ProgramSource(*procs, *size, *size), reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skipper-emu:", err)
		os.Exit(1)
	}
	if err := prog.Emulate(*iters); err != nil {
		fmt.Fprintln(os.Stderr, "skipper-emu:", err)
		os.Exit(1)
	}
	locked := 0
	for _, r := range rec.Results {
		if r.Tracking {
			locked++
		}
	}
	fmt.Printf("\nsequential emulation: %d iterations, lock ratio %.0f%%\n",
		len(rec.Results), 100*float64(locked)/float64(len(rec.Results)))
}
