// Command skipper-top is the SKiPPER interactive toplevel: a Caml-style
// REPL over the specification language. Declarations accumulate across
// inputs, expressions are type-checked and evaluated against the
// declarative skeleton semantics, and the process graph of the current
// program can be rendered at any point.
//
//	$ skipper-top
//	# let double x = 2 * x;;
//	val double : int -> int = <fun>
//	# df 2 double (fun a b -> a + b) 0 [1; 2; 3];;
//	...
//	# :type itermem
//	# :quit
//
// Extern declarations are stubbed from their signatures, so specifications
// can be explored before any sequential function exists.
package main

import (
	"fmt"
	"os"

	"skipper/internal/repl"
)

func main() {
	if err := repl.Run(os.Stdin, os.Stdout, true); err != nil {
		fmt.Fprintln(os.Stderr, "skipper-top:", err)
		os.Exit(1)
	}
}
