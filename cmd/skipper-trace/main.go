// Command skipper-trace analyzes event traces recorded by the executive
// (skipper-run/skipper-node -trace=<dir>). It merges the per-process
// trace-*.json files onto the coordinator's clock and prints a per-op
// latency table, per-processor utilization and the (approximate) critical
// path of the run.
//
// With -compare the tool recompiles the deployment the trace's metadata
// names, runs the SynDEx-style timing simulator over the same schedule and
// diffs the measured per-op time shares against the predicted ones — the
// numeric counterpart of putting the predicted and measured chronograms
// side by side (paper Fig. 5). Because the simulator's virtual clock and
// the host's wall clock use different units, the comparison normalizes
// each side to its share of total op time and reports the skew per op.
//
// With -skew the same comparison is computed as a report; -skew -json emits
// it machine-readable (for CI gates and dashboards). -strict exits nonzero
// when the loaded trace dropped events to ring wrap-around, so automation
// cannot silently trust a trace with holes in it.
//
// Usage:
//
//	skipper-trace [-compare] [-skew [-json]] [-strict] [-top 20] <trace-dir>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"skipper/internal/distrib"
	"skipper/internal/obsv"
	"skipper/internal/sim"
)

func main() {
	compare := flag.Bool("compare", false, "diff measured per-op time shares against the simulator's predicted schedule")
	skew := flag.Bool("skew", false, "compute the measured-vs-predicted skew report (same math as -compare)")
	jsonOut := flag.Bool("json", false, "with -skew: emit the report as JSON instead of the human tables")
	strict := flag.Bool("strict", false, "exit nonzero when the trace dropped events to ring wrap-around")
	top := flag.Int("top", 20, "rows to print in the per-op latency table (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skipper-trace [-compare] [-skew [-json]] [-strict] [-top N] <trace-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	tr, err := obsv.LoadDir(dir)
	if err != nil {
		fatal(err)
	}
	spans := tr.OpSpans()
	nprocs := tr.NProcs
	for _, sp := range spans {
		if int(sp.Proc)+1 > nprocs {
			nprocs = int(sp.Proc) + 1
		}
	}

	if tr.Dropped > 0 {
		fmt.Fprintf(os.Stderr,
			"skipper-trace: WARNING: trace dropped %d events to ring wrap-around — tables and skew shares below have holes; record with a larger ring or a shorter window\n",
			tr.Dropped)
	}

	if *skew && *jsonOut {
		// Machine-readable mode: the skew report is the only stdout output.
		rep, err := buildSkewReport(tr, spans)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		exitStrict(*strict, tr.Dropped)
		return
	}

	fmt.Printf("trace: %d events, %d op spans, %d processors", len(tr.Events), len(spans), len(tr.Procs))
	if tr.Dropped > 0 {
		fmt.Printf(" (%d events dropped to ring wrap)", tr.Dropped)
	}
	fmt.Println()

	printOpTable(spans, *top)
	printUtilization(spans, nprocs)
	printCriticalPath(spans)

	if *compare || *skew {
		rep, err := buildSkewReport(tr, spans)
		if err != nil {
			fatal(err)
		}
		printSkewReport(rep)
	}
	exitStrict(*strict, tr.Dropped)
}

// exitStrict enforces -strict: a trace with holes fails the invocation.
func exitStrict(strict bool, dropped int64) {
	if strict && dropped > 0 {
		fmt.Fprintf(os.Stderr, "skipper-trace: strict mode: failing on %d dropped events\n", dropped)
		os.Exit(1)
	}
}

// printOpTable renders the per-op latency table, heaviest ops first.
func printOpTable(spans []obsv.OpSpan, top int) {
	stats := obsv.AggregateOps(spans)
	if len(stats) == 0 {
		fmt.Println("\nno op spans recorded (trace carries only transport events?)")
		return
	}
	var totalNS int64
	for _, st := range stats {
		totalNS += st.TotalNS
	}
	fmt.Printf("\n%-24s %8s %10s %10s %10s %10s %7s\n",
		"op", "count", "total", "mean", "min", "max", "share")
	rows := stats
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for _, st := range rows {
		fmt.Printf("%-24s %8d %10s %10s %10s %10s %6.1f%%\n",
			clip(st.Label, 24), st.Count,
			fmtNS(st.TotalNS), fmtNS(st.MeanNS()), fmtNS(st.MinNS), fmtNS(st.MaxNS),
			100*float64(st.TotalNS)/float64(max64(totalNS, 1)))
	}
	if len(rows) < len(stats) {
		fmt.Printf("… %d more ops (-top 0 shows all)\n", len(stats)-len(rows))
	}
}

// printUtilization renders each processor's busy fraction as a bar.
func printUtilization(spans []obsv.OpSpan, nprocs int) {
	busy, total := obsv.Utilization(spans, nprocs)
	if total == 0 {
		return
	}
	fmt.Printf("\nutilization over %s:\n", fmtNS(total))
	for p, b := range busy {
		frac := float64(b) / float64(total)
		bar := strings.Repeat("█", int(frac*40+0.5))
		fmt.Printf("  P%-3d %5.1f%% %s\n", p, 100*frac, bar)
	}
}

// printCriticalPath renders the approximate critical path, longest hops
// first collapsed to at most a dozen entries.
func printCriticalPath(spans []obsv.OpSpan) {
	path := obsv.CriticalPath(spans)
	if len(path) == 0 {
		return
	}
	var pathNS int64
	for _, sp := range path {
		pathNS += sp.Dur()
	}
	fmt.Printf("\ncritical path: %d spans, %s busy\n", len(path), fmtNS(pathNS))
	show := path
	const maxShow = 12
	if len(show) > maxShow {
		show = show[len(show)-maxShow:]
		fmt.Printf("  … %d earlier spans\n", len(path)-maxShow)
	}
	for _, sp := range show {
		fmt.Printf("  P%-3d %-24s %10s  at %s\n", sp.Proc, clip(sp.Label, 24), fmtNS(sp.Dur()), fmtNS(sp.Start))
	}
}

// skewReport is the measured-vs-predicted comparison in machine-readable
// form — what `-skew -json` emits and the human table renders.
type skewReport struct {
	Topology string `json:"topology"`
	Procs    int    `json:"procs"`
	Iters    int    `json:"iters"`
	// DroppedEvents flags an incomplete trace: shares below have holes.
	DroppedEvents int64       `json:"droppedEvents,omitempty"`
	Ops           []skewEntry `json:"ops"`
	// PredictedOnly/MeasuredOnly are labels one side knows and the other
	// does not (a trace from a different build, or ops the simulator folds).
	PredictedOnly []string `json:"predictedOnly,omitempty"`
	MeasuredOnly  []string `json:"measuredOnly,omitempty"`
}

// skewEntry is one op's normalized time shares. Shares are fractions of
// each side's total op time over the common labels; SkewPct is the
// measured share minus the predicted share, in percentage points.
type skewEntry struct {
	Op             string  `json:"op"`
	PredictedShare float64 `json:"predictedShare"`
	MeasuredShare  float64 `json:"measuredShare"`
	SkewPct        float64 `json:"skewPct"`
	MeasuredNS     int64   `json:"measuredNs"`
}

// buildSkewReport recompiles the deployment named by the trace's metadata,
// simulates it, and diffs the per-op time shares. The simulator's virtual
// seconds and the trace's wall-clock nanoseconds are incommensurable, so
// each side is normalized to its share of total op time over the labels
// both sides know about.
func buildSkewReport(tr *obsv.Trace, spans []obsv.OpSpan) (*skewReport, error) {
	sp, err := distrib.SpecFromMeta(tr.Meta)
	if err != nil {
		return nil, err
	}
	s, reg, _, err := sp.Compile()
	if err != nil {
		return nil, fmt.Errorf("recompiling spec from trace meta: %w", err)
	}
	res, err := sim.Run(s, reg, sim.Options{Iters: sp.Iters, Trace: true})
	if err != nil {
		return nil, fmt.Errorf("simulating predicted schedule: %w", err)
	}

	predicted := map[string]float64{}
	for _, span := range res.Spans {
		predicted[span.Label] += span.End - span.Start
	}
	measured := map[string]float64{}
	for _, span := range spans {
		measured[span.Label] += float64(span.Dur())
	}
	var labels []string
	var predTotal, measTotal float64
	for l, p := range predicted {
		if m, ok := measured[l]; ok {
			labels = append(labels, l)
			predTotal += p
			measTotal += m
		}
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("no op labels common to the trace and the predicted schedule (trace recorded with a different build?)")
	}
	sort.Slice(labels, func(a, b int) bool { return measured[labels[a]] > measured[labels[b]] })

	rep := &skewReport{
		Topology:      sp.Topology,
		Procs:         sp.Procs,
		Iters:         sp.Iters,
		DroppedEvents: tr.Dropped,
	}
	for _, l := range labels {
		ps := predicted[l] / predTotal
		ms := measured[l] / measTotal
		rep.Ops = append(rep.Ops, skewEntry{
			Op:             l,
			PredictedShare: ps,
			MeasuredShare:  ms,
			SkewPct:        (ms - ps) * 100,
			MeasuredNS:     int64(measured[l]),
		})
	}
	for l := range predicted {
		if _, ok := measured[l]; !ok {
			rep.PredictedOnly = append(rep.PredictedOnly, l)
		}
	}
	for l := range measured {
		if _, ok := predicted[l]; !ok {
			rep.MeasuredOnly = append(rep.MeasuredOnly, l)
		}
	}
	sort.Strings(rep.PredictedOnly)
	sort.Strings(rep.MeasuredOnly)
	return rep, nil
}

// printSkewReport renders the report as the human-facing table.
func printSkewReport(rep *skewReport) {
	fmt.Printf("\npredicted vs measured (%s, %d procs, %d iters), normalized time shares over %d common ops:\n",
		rep.Topology, rep.Procs, rep.Iters, len(rep.Ops))
	fmt.Printf("%-24s %11s %11s %8s\n", "op", "predicted", "measured", "skew")
	for _, e := range rep.Ops {
		fmt.Printf("%-24s %10.2f%% %10.2f%% %+7.2f%%\n",
			clip(e.Op, 24), 100*e.PredictedShare, 100*e.MeasuredShare, e.SkewPct)
	}
	if len(rep.PredictedOnly) > 0 {
		fmt.Printf("predicted only: %s\n", strings.Join(rep.PredictedOnly, ", "))
	}
	if len(rep.MeasuredOnly) > 0 {
		fmt.Printf("measured only : %s\n", strings.Join(rep.MeasuredOnly, ", "))
	}
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skipper-trace:", err)
	os.Exit(1)
}
