// Command skipper-trace analyzes event traces recorded by the executive
// (skipper-run/skipper-node -trace=<dir>). It merges the per-process
// trace-*.json files onto the coordinator's clock and prints a per-op
// latency table, per-processor utilization and the (approximate) critical
// path of the run.
//
// With -compare the tool recompiles the deployment the trace's metadata
// names, runs the SynDEx-style timing simulator over the same schedule and
// diffs the measured per-op time shares against the predicted ones — the
// numeric counterpart of putting the predicted and measured chronograms
// side by side (paper Fig. 5). Because the simulator's virtual clock and
// the host's wall clock use different units, the comparison normalizes
// each side to its share of total op time and reports the skew per op.
//
// Usage:
//
//	skipper-trace [-compare] [-top 20] <trace-dir>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"skipper/internal/distrib"
	"skipper/internal/obsv"
	"skipper/internal/sim"
)

func main() {
	compare := flag.Bool("compare", false, "diff measured per-op time shares against the simulator's predicted schedule")
	top := flag.Int("top", 20, "rows to print in the per-op latency table (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skipper-trace [-compare] [-top N] <trace-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	tr, err := obsv.LoadDir(dir)
	if err != nil {
		fatal(err)
	}
	spans := tr.OpSpans()
	nprocs := tr.NProcs
	for _, sp := range spans {
		if int(sp.Proc)+1 > nprocs {
			nprocs = int(sp.Proc) + 1
		}
	}

	fmt.Printf("trace: %d events, %d op spans, %d processors", len(tr.Events), len(spans), len(tr.Procs))
	if tr.Dropped > 0 {
		fmt.Printf(" (%d events dropped to ring wrap)", tr.Dropped)
	}
	fmt.Println()

	printOpTable(spans, *top)
	printUtilization(spans, nprocs)
	printCriticalPath(spans)

	if *compare {
		if err := compareWithPrediction(tr, spans); err != nil {
			fatal(err)
		}
	}
}

// printOpTable renders the per-op latency table, heaviest ops first.
func printOpTable(spans []obsv.OpSpan, top int) {
	stats := obsv.AggregateOps(spans)
	if len(stats) == 0 {
		fmt.Println("\nno op spans recorded (trace carries only transport events?)")
		return
	}
	var totalNS int64
	for _, st := range stats {
		totalNS += st.TotalNS
	}
	fmt.Printf("\n%-24s %8s %10s %10s %10s %10s %7s\n",
		"op", "count", "total", "mean", "min", "max", "share")
	rows := stats
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	for _, st := range rows {
		fmt.Printf("%-24s %8d %10s %10s %10s %10s %6.1f%%\n",
			clip(st.Label, 24), st.Count,
			fmtNS(st.TotalNS), fmtNS(st.MeanNS()), fmtNS(st.MinNS), fmtNS(st.MaxNS),
			100*float64(st.TotalNS)/float64(max64(totalNS, 1)))
	}
	if len(rows) < len(stats) {
		fmt.Printf("… %d more ops (-top 0 shows all)\n", len(stats)-len(rows))
	}
}

// printUtilization renders each processor's busy fraction as a bar.
func printUtilization(spans []obsv.OpSpan, nprocs int) {
	busy, total := obsv.Utilization(spans, nprocs)
	if total == 0 {
		return
	}
	fmt.Printf("\nutilization over %s:\n", fmtNS(total))
	for p, b := range busy {
		frac := float64(b) / float64(total)
		bar := strings.Repeat("█", int(frac*40+0.5))
		fmt.Printf("  P%-3d %5.1f%% %s\n", p, 100*frac, bar)
	}
}

// printCriticalPath renders the approximate critical path, longest hops
// first collapsed to at most a dozen entries.
func printCriticalPath(spans []obsv.OpSpan) {
	path := obsv.CriticalPath(spans)
	if len(path) == 0 {
		return
	}
	var pathNS int64
	for _, sp := range path {
		pathNS += sp.Dur()
	}
	fmt.Printf("\ncritical path: %d spans, %s busy\n", len(path), fmtNS(pathNS))
	show := path
	const maxShow = 12
	if len(show) > maxShow {
		show = show[len(show)-maxShow:]
		fmt.Printf("  … %d earlier spans\n", len(path)-maxShow)
	}
	for _, sp := range show {
		fmt.Printf("  P%-3d %-24s %10s  at %s\n", sp.Proc, clip(sp.Label, 24), fmtNS(sp.Dur()), fmtNS(sp.Start))
	}
}

// compareWithPrediction recompiles the deployment named by the trace's
// metadata, simulates it, and diffs the per-op time shares.
func compareWithPrediction(tr *obsv.Trace, spans []obsv.OpSpan) error {
	sp, err := distrib.SpecFromMeta(tr.Meta)
	if err != nil {
		return err
	}
	s, reg, _, err := sp.Compile()
	if err != nil {
		return fmt.Errorf("recompiling spec from trace meta: %w", err)
	}
	res, err := sim.Run(s, reg, sim.Options{Iters: sp.Iters, Trace: true})
	if err != nil {
		return fmt.Errorf("simulating predicted schedule: %w", err)
	}

	// Aggregate per-label totals on both sides. The simulator's virtual
	// seconds and the trace's wall-clock nanoseconds are incommensurable,
	// so each side is normalized to its share of total op time over the
	// labels both sides know about.
	predicted := map[string]float64{}
	for _, span := range res.Spans {
		predicted[span.Label] += span.End - span.Start
	}
	measured := map[string]float64{}
	for _, span := range spans {
		measured[span.Label] += float64(span.Dur())
	}
	var labels []string
	var predTotal, measTotal float64
	for l, p := range predicted {
		if m, ok := measured[l]; ok {
			labels = append(labels, l)
			predTotal += p
			measTotal += m
		}
	}
	if len(labels) == 0 {
		return fmt.Errorf("no op labels common to the trace and the predicted schedule (trace recorded with a different build?)")
	}
	sort.Slice(labels, func(a, b int) bool { return measured[labels[a]] > measured[labels[b]] })

	fmt.Printf("\npredicted vs measured (%s, %d procs, %d iters), normalized time shares over %d common ops:\n",
		sp.Topology, sp.Procs, sp.Iters, len(labels))
	fmt.Printf("%-24s %11s %11s %8s\n", "op", "predicted", "measured", "skew")
	for _, l := range labels {
		ps := predicted[l] / predTotal
		ms := measured[l] / measTotal
		skew := (ms - ps) * 100
		fmt.Printf("%-24s %10.2f%% %10.2f%% %+7.2f%%\n", clip(l, 24), 100*ps, 100*ms, skew)
	}
	var onlyPred, onlyMeas []string
	for l := range predicted {
		if _, ok := measured[l]; !ok {
			onlyPred = append(onlyPred, l)
		}
	}
	for l := range measured {
		if _, ok := predicted[l]; !ok {
			onlyMeas = append(onlyMeas, l)
		}
	}
	sort.Strings(onlyPred)
	sort.Strings(onlyMeas)
	if len(onlyPred) > 0 {
		fmt.Printf("predicted only: %s\n", strings.Join(onlyPred, ", "))
	}
	if len(onlyMeas) > 0 {
		fmt.Printf("measured only : %s\n", strings.Join(onlyMeas, ", "))
	}
	return nil
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skipper-trace:", err)
	os.Exit(1)
}
