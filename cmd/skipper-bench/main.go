// Command skipper-bench regenerates the paper's evaluation: every
// experiment indexed in DESIGN.md §4 (E1–E9) prints the corresponding
// table, with the paper's reported value alongside the measured one where
// the paper gives a number.
//
// With -json it instead measures the machine-readable benchmark suite
// (ns/op, B/op, allocs/op for E1/E5/E7 and the hot-path micro-benchmarks,
// plus the E1 simulated-time latency table) and writes it to the given
// file — by convention BENCH_<pr>.json at the repository root, which the
// tier-1 envelope guard test (bench_guard_test.go) then checks against the
// paper's published latency envelope.
//
// Usage:
//
//	skipper-bench [-exp all|e1|e2|...|e11] [-iters 30]
//	skipper-bench -json BENCH_1.json [-iters 30]
//	skipper-bench -json bench-smoke.json -filter Transport [-iters 5]
//	skipper-bench -json BENCH_7.json -baseline BENCH_6.json
//
// -filter restricts a -json run to benchmarks whose name contains the
// given substring (and skips the E1 latency table) — the quick snapshot
// CI's bench-smoke job uploads on every push.
//
// -baseline compares the fresh measurements against a prior BENCH_N.json
// snapshot and prints a per-benchmark delta table (ns/op and allocs/op,
// with the relative change), so a PR's perf claim is read straight off
// the run instead of eyeballing two JSON files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"skipper/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all or e1..e11 (comma-separated)")
	iters := flag.Int("iters", 30, "stream iterations per measurement")
	jsonPath := flag.String("json", "", "measure the benchmark suite and write machine-readable results to this file")
	filter := flag.String("filter", "", "with -json: only run benchmarks whose name contains this substring (skips the E1 latency table)")
	baseline := flag.String("baseline", "", "with -json: compare against this prior BENCH_N.json snapshot and print a delta table")
	flag.Parse()

	if *jsonPath != "" {
		fmt.Printf("benchmark suite (iters=%d):\n", *iters)
		rep, err := harness.RunBenchReport(os.Stdout, *iters, *filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipper-bench: %v\n", err)
			os.Exit(1)
		}
		if err := harness.WriteBenchJSON(rep, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "skipper-bench: %v\n", err)
			os.Exit(1)
		}
		if rep.E1 != nil {
			fmt.Printf("E1 simulated latency: tracking %.1f ms, reinit %.1f ms\n",
				rep.E1.TrackingMS, rep.E1.ReinitMS)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		if *baseline != "" {
			base, err := harness.ReadBenchJSON(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skipper-bench: baseline: %v\n", err)
				os.Exit(1)
			}
			printDeltaTable(os.Stdout, *baseline, base, rep)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "skipper-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	w := os.Stdout
	run("e1", func() error { _, err := harness.E1(w, *iters); return err })
	run("e2", func() error { _, err := harness.E2(w, *iters, []int{1, 2, 4, 6, 8, 12, 16}); return err })
	run("e3", func() error { _, err := harness.E3(w, *iters); return err })
	run("e4", func() error { _, err := harness.E4(w, *iters); return err })
	run("e5", func() error { _, err := harness.E5(w, 32, 8); return err })
	run("e6", func() error { _, err := harness.E6(w, *iters); return err })
	run("e7", func() error { _, err := harness.E7(w, []int{1, 2, 4, 8, 16}); return err })
	run("e8", func() error { _, err := harness.E8(w, []int{1, 2, 4, 8}); return err })
	run("e9", func() error { _, err := harness.E9(w); return err })
	run("e10", func() error { _, err := harness.E10(w, *iters); return err })
	run("e11", func() error { _, err := harness.E11(w, *iters); return err })
}

// printDeltaTable prints one row per benchmark present in the fresh run,
// with the baseline figure and the relative change where the baseline
// carries the same benchmark. New benchmarks (absent from the baseline)
// print "new"; benchmarks the baseline had but the fresh run lacks are
// listed at the end so a silently dropped measurement is visible.
func printDeltaTable(w io.Writer, basePath string, base, cur *harness.BenchReport) {
	old := map[string]harness.BenchEntry{}
	for _, e := range base.Results {
		old[e.Name] = e
	}
	fmt.Fprintf(w, "\ndelta vs %s:\n", basePath)
	fmt.Fprintf(w, "  %-32s %14s %14s %9s %9s\n",
		"benchmark", "base ns/op", "ns/op", "Δns/op", "Δallocs")
	seen := map[string]bool{}
	for _, e := range cur.Results {
		seen[e.Name] = true
		b, ok := old[e.Name]
		if !ok {
			fmt.Fprintf(w, "  %-32s %14s %14.0f %9s %9s\n", e.Name, "—", e.NsPerOp, "new", "")
			continue
		}
		ns := "~"
		if b.NsPerOp > 0 {
			ns = fmt.Sprintf("%+.1f%%", 100*(e.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
		al := ""
		if d := e.AllocsPerOp - b.AllocsPerOp; d != 0 {
			al = fmt.Sprintf("%+d", d)
		}
		fmt.Fprintf(w, "  %-32s %14.0f %14.0f %9s %9s\n", e.Name, b.NsPerOp, e.NsPerOp, ns, al)
	}
	for _, e := range base.Results {
		if !seen[e.Name] {
			fmt.Fprintf(w, "  %-32s %14.0f %14s %9s %9s\n", e.Name, e.NsPerOp, "—", "gone", "")
		}
	}
}
