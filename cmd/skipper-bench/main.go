// Command skipper-bench regenerates the paper's evaluation: every
// experiment indexed in DESIGN.md §4 (E1–E9) prints the corresponding
// table, with the paper's reported value alongside the measured one where
// the paper gives a number.
//
// Usage:
//
//	skipper-bench [-exp all|e1|e2|...|e9] [-iters 30]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skipper/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all or e1..e9 (comma-separated)")
	iters := flag.Int("iters", 30, "stream iterations per measurement")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "skipper-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	w := os.Stdout
	run("e1", func() error { _, err := harness.E1(w, *iters); return err })
	run("e2", func() error { _, err := harness.E2(w, *iters, []int{1, 2, 4, 6, 8, 12, 16}); return err })
	run("e3", func() error { _, err := harness.E3(w, *iters); return err })
	run("e4", func() error { _, err := harness.E4(w, *iters); return err })
	run("e5", func() error { _, err := harness.E5(w, 32, 8); return err })
	run("e6", func() error { _, err := harness.E6(w, *iters); return err })
	run("e7", func() error { _, err := harness.E7(w, []int{1, 2, 4, 8, 16}); return err })
	run("e8", func() error { _, err := harness.E8(w, []int{1, 2, 4, 8}); return err })
	run("e9", func() error { _, err := harness.E9(w); return err })
	run("e10", func() error { _, err := harness.E10(w, *iters); return err })
	run("e11", func() error { _, err := harness.E11(w, *iters); return err })
}
