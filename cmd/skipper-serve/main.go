// Command skipper-serve runs SKiPPER as a service: a long-lived control
// plane that schedules many tracking jobs over an elastic fleet of
// skipper-node workers (DESIGN.md §13).
//
//	skipper-serve -http 127.0.0.1:8080 -fleet 127.0.0.1:7070
//
// Workers join and leave at any time:
//
//	skipper-node -fleet 127.0.0.1:7070 -name w1
//
// Clients submit jobs over HTTP — the body is the deployment agreement
// (distrib.Job):
//
//	curl -X POST localhost:8080/jobs -d '{"topology":"ring","procs":6,
//	     "width":256,"height":256,"vehicles":3,"seed":3,"iters":50}'
//	curl localhost:8080/jobs/j1          # status, digest, placement
//	curl -X DELETE localhost:8080/jobs/j1  # cancel
//
// Jobs queue FIFO (429 beyond -queue-limit), run concurrently up to
// -max-running, each in its own fingerprint-salted session on one shared
// fleet hub, and survive worker deaths by re-running from scratch under a
// fresh salt. /metrics, /healthz and /varz ride the HTTP address.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skipper/internal/distrib"
	"skipper/internal/serve"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:8080", "job API bind address (also serves /metrics, /healthz, /varz)")
	fleetAddr := flag.String("fleet", "127.0.0.1:7070", "worker control-channel bind address (unix: paths work)")
	hubAddr := flag.String("hub", "127.0.0.1:0", "frame-traffic fleet hub bind address (unix: paths work)")
	queueLimit := flag.Int("queue-limit", 64, "FIFO queue bound; submissions beyond it get 429")
	maxRunning := flag.Int("max-running", 8, "concurrently executing jobs")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt executive watchdog")
	jobRequeues := flag.Int("job-requeues", 2, "re-runs granted per job after worker deaths")
	inProcess := flag.Bool("in-process", false, "run jobs on the in-process executive (no fleet; scheduler benchmarking)")
	flightDir := flag.String("flight", "skipper-flight", "directory for the always-on flight recorder's fault artifacts (empty disables)")
	execFlags := distrib.ExecFlagSet(flag.CommandLine)
	flag.Parse()

	s, err := serve.New(serve.Config{
		HTTPAddr:       *httpAddr,
		FleetAddr:      *fleetAddr,
		HubAddr:        *hubAddr,
		QueueLimit:     *queueLimit,
		MaxRunning:     *maxRunning,
		JobTimeout:     *jobTimeout,
		JobRequeues:    *jobRequeues,
		InProcess:      *inProcess,
		FlightDir:      *flightDir,
		MaxRetries:     *execFlags.MaxRetries,
		TaskDeadline:   *execFlags.TaskDeadline,
		Heartbeat:      *execFlags.Heartbeat,
		SpeculateAfter: *execFlags.SpeculateAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "skipper-serve:", err)
		os.Exit(1)
	}
	fmt.Printf("skipper-serve: jobs API on http://%s\n", s.Addr())
	if fa := s.FleetAddr(); fa != "" {
		fmt.Printf("skipper-serve: fleet join address %s (skipper-node -fleet %s)\n", fa, fa)
	}
	fmt.Printf("skipper-serve: fleet hub on %s\n", s.HubAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "skipper-serve: shutting down")
	s.Close()
}
