// Command skipper-node runs processors of a distributed SKiPPER executive
// in its own OS process, in one of two modes.
//
// Classic one-shot mode hosts ONE processor of ONE deployment: it compiles
// the same tracking deployment as the coordinator (the hub rejects the
// connection if the schedule fingerprints differ), dials the hub, claims
// its processor and interprets that processor's op program over the TCP
// transport. The hub connection is control plane only (handshake, abort,
// detach, frames to coordinator-hosted processors); once every processor
// has attached, the hub broadcasts the cluster address map and node↔node
// frames travel one TCP hop over the peer-to-peer data mesh (DESIGN.md §9).
// Node processes are normally spawned by `skipper-run -transport=tcp`,
// which passes matching deployment flags; the command line mirrors the
// manifest.json `launch` entry written by skipperc -outdir:
//
//	skipper-node -hub 127.0.0.1:7000 -proc 3 \
//	             -procs 8 -size 512 -vehicles 3 -seed 3 -iters 50
//
// Fleet mode (-fleet) turns the process into a long-lived worker of a
// skipper-serve control plane: it joins the fleet, then executes any
// number of job assignments — hosting whatever processors of whatever
// deployments the scheduler hands it, several jobs concurrently — until
// the control plane stops or disappears. Deployment flags are ignored in
// this mode; each assignment ships its own spec (DESIGN.md §13):
//
//	skipper-node -fleet 127.0.0.1:7070 -name w1
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"skipper/internal/distrib"
)

func main() {
	shared := distrib.FlagSet(flag.CommandLine)
	hub := flag.String("hub", "", "coordinator hub address (host:port), required unless -fleet")
	proc := flag.Int("proc", -1, "processor id this node hosts (1..N-1), required unless -fleet")
	fleet := flag.String("fleet", "", "skipper-serve fleet address: join as a long-lived worker instead of running one processor")
	name := flag.String("name", "", "with -fleet: worker name (default host-pid)")
	timeout := flag.Duration("timeout", 2*time.Minute, "dial + run watchdog (with -fleet: how long to keep retrying the join)")
	flight := flag.String("flight", "skipper-flight", "with -fleet: directory for the always-on flight recorder's fault artifacts (empty disables)")
	dieAfterSends := flag.Int("die-after-sends", 0, "chaos: sever this node's transport after it has sent this many frames (0 disables)")
	slowEveryNth := flag.Int("slow-every-nth", 0, "chaos: delay every Nth frame this node sends by -slow-for (0 disables)")
	slowFor := flag.Duration("slow-for", 0, "chaos: how long -slow-every-nth delays a send")
	flag.Parse()

	if *fleet != "" {
		if err := distrib.RunWorker(*fleet, *name, *timeout, *flight); err != nil {
			fmt.Fprintln(os.Stderr, "skipper-node:", err)
			os.Exit(1)
		}
		return
	}

	if *hub == "" || *proc < 0 {
		fmt.Fprintln(os.Stderr, "skipper-node: -hub and -proc are required (or -fleet for worker mode)")
		flag.Usage()
		os.Exit(2)
	}
	sp := shared.Spec()
	sp.DieAfterSends = *dieAfterSends
	sp.SlowEveryNth = *slowEveryNth
	sp.SlowFor = *slowFor
	if err := distrib.RunNode(sp, *proc, *hub, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "skipper-node:", err)
		// A fired chaos trigger is the drill working as scripted, not a
		// fault of this node; exit distinctly so the spawner can tell.
		if errors.Is(err, distrib.ErrChaosKilled) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}
