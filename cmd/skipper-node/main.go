// Command skipper-node runs ONE processor of a distributed SKiPPER
// executive in its own OS process. It compiles the same tracking
// deployment as the coordinator (the hub rejects the connection if the
// schedule fingerprints differ), dials the hub, claims its processor and
// interprets that processor's op program over the TCP transport. The hub
// connection is control plane only (handshake, abort, detach, frames to
// coordinator-hosted processors); once every processor has attached, the
// hub broadcasts the cluster address map and node↔node frames travel one
// TCP hop over the peer-to-peer data mesh (DESIGN.md §9).
//
// Node processes are normally spawned by `skipper-run -transport=tcp`,
// which passes matching deployment flags; the command line mirrors the
// manifest.json `launch` entry written by skipperc -outdir:
//
//	skipper-node -hub 127.0.0.1:7000 -proc 3 \
//	             -procs 8 -size 512 -vehicles 3 -seed 3 -iters 50
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"skipper/internal/distrib"
)

func main() {
	hub := flag.String("hub", "", "coordinator hub address (host:port), required")
	proc := flag.Int("proc", -1, "processor id this node hosts (1..N-1), required")
	procs := flag.Int("procs", 8, "number of processors in the deployment")
	iters := flag.Int("iters", 50, "stream iterations")
	size := flag.Int("size", 512, "frame width and height")
	vehicles := flag.Int("vehicles", 3, "lead vehicles (1-3)")
	seed := flag.Int64("seed", 3, "synthetic scene seed")
	topology := flag.String("topology", "ring", "ring, chain, star or full")
	deterministic := flag.Bool("deterministic", false, "order-insensitive farm accumulation")
	pipeline := flag.Bool("pipeline", false, "software-pipeline the itermem loop, must match the coordinator")
	timeout := flag.Duration("timeout", 2*time.Minute, "dial + run watchdog")
	trace := flag.String("trace", "", "write this node's event trace (trace-node<p>.json) into this directory")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /varz on this address during the run")
	maxRetries := flag.Int("max-retries", 0, "farm fault tolerance: re-dispatch a dead worker's tasks up to this many times (0 disables)")
	taskDeadline := flag.Duration("task-deadline", 0, "declare a worker dead when a farm task sits unanswered this long (0 disables)")
	heartbeat := flag.Duration("heartbeat", 0, "control-plane liveness heartbeat interval, must match the coordinator (0 disables)")
	dieAfterSends := flag.Int("die-after-sends", 0, "chaos: sever this node's transport after it has sent this many frames (0 disables)")
	flag.Parse()

	if *hub == "" || *proc < 0 {
		fmt.Fprintln(os.Stderr, "skipper-node: -hub and -proc are required")
		flag.Usage()
		os.Exit(2)
	}
	sp := distrib.Spec{
		Topology: *topology, Procs: *procs,
		Width: *size, Height: *size,
		Vehicles: *vehicles, Seed: *seed,
		Iters: *iters, Deterministic: *deterministic, Pipeline: *pipeline,
		TraceDir: *trace, DebugAddr: *debugAddr,
		MaxRetries: *maxRetries, TaskDeadline: *taskDeadline,
		Heartbeat: *heartbeat, DieAfterSends: *dieAfterSends,
	}
	if err := distrib.RunNode(sp, *proc, *hub, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "skipper-node:", err)
		// A fired chaos trigger is the drill working as scripted, not a
		// fault of this node; exit distinctly so the spawner can tell.
		if errors.Is(err, distrib.ErrChaosKilled) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}
