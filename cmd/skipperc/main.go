// Command skipperc is the SKiPPER compiler front end: it parses,
// type-checks and skeleton-expands a specification, maps it onto a target
// architecture, and prints any of the intermediate artifacts — inferred
// types, the process graph (DOT), the placement summary and the m4-style
// macro-code of the distributed executive.
//
// Extern functions are stubbed automatically from their declared
// signatures, so any well-formed specification compiles without the host
// application (use skipper-run to execute the built-in applications).
//
// Usage:
//
//	skipperc [-arch ring:8] [-strategy structured|listsched]
//	         [-types] [-dot] [-macro] [-summary] [file.skl]
//
// With no file argument the source is read from stdin. With no output
// flags, -types and -summary are implied.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"skipper"
)

func main() {
	archFlag := flag.String("arch", "ring:8", "target architecture: ring:N, chain:N, star:N, full:N, hypercube:D, grid:WxH, torus:WxH")
	strategy := flag.String("strategy", "structured", "distribution strategy: structured or listsched")
	showTypes := flag.Bool("types", false, "print inferred types of top-level bindings")
	showDOT := flag.Bool("dot", false, "print the process graph in Graphviz format")
	showMacro := flag.Bool("macro", false, "print the executive macro-code")
	showSummary := flag.Bool("summary", false, "print the process placement")
	optimize := flag.Bool("O", false, "apply graph transformation rules before mapping")
	outdir := flag.String("outdir", "", "write graph.dot and per-processor macro-code files to this directory")
	flag.Parse()

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if !*showTypes && !*showDOT && !*showMacro && !*showSummary {
		*showTypes, *showSummary = true, true
	}

	reg, err := skipper.StubRegistry(src)
	if err != nil {
		fatal(err)
	}
	prog, err := skipper.Compile(src, reg)
	if err != nil {
		fatal(err)
	}
	if *optimize {
		n := prog.Optimize()
		fmt.Fprintf(os.Stderr, "skipperc: %d graph rewrites applied\n", n)
	}

	if *showTypes {
		fmt.Println("-- types")
		for _, name := range prog.Types.Order {
			ty, _ := prog.TypeOf(name)
			fmt.Printf("val %s : %s\n", name, ty)
		}
	}
	if *showDOT {
		fmt.Print(prog.DOT("skipper"))
	}

	if *showMacro || *showSummary {
		a, err := skipper.ParseArch(*archFlag)
		if err != nil {
			fatal(err)
		}
		strat := skipper.Structured
		if *strategy == "listsched" {
			strat = skipper.ListSched
		} else if *strategy != "structured" {
			fatal(fmt.Errorf("unknown strategy %q", *strategy))
		}
		dep, err := prog.MapOnto(a, strat)
		if err != nil {
			fatal(err)
		}
		if *showSummary {
			fmt.Println("-- placement on " + a.Name)
			fmt.Print(dep.Summary())
		}
		if *showMacro {
			fmt.Print(dep.MacroCode())
		}
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fatal(err)
			}
			artifacts := dep.Schedule.MacroCodeFiles()
			artifacts["graph.dot"] = prog.DOT("skipper")
			manifest, err := dep.Schedule.ManifestJSON()
			if err != nil {
				fatal(err)
			}
			artifacts["manifest.json"] = string(manifest)
			for name, content := range artifacts {
				if err := os.WriteFile(filepath.Join(*outdir, name), []byte(content), 0o644); err != nil {
					fatal(err)
				}
			}
			fmt.Fprintf(os.Stderr, "skipperc: wrote %d files to %s\n", len(artifacts), *outdir)
		}
	}
}

func readSource(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skipperc:", err)
	os.Exit(1)
}
