package skipper

// Random-program fuzzing of the whole pipeline: generate random stream
// specifications (a chain of df farm stages inside an itermem loop, with
// varying worker counts), then check that the sequential emulator, the
// goroutine executive and the timing simulator compute identical output
// streams on random topologies. This is the strongest form of the paper's
// equivalence claim this repository can state mechanically.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"skipper/internal/dsl/eval"
	"skipper/internal/sim"
)

// randPipeline builds the registry and source for a random pipeline.
// Transforms are all pure int->int functions; the accumulator is addition
// (commutative, per the paper's requirement).
func randPipeline(rng *rand.Rand) (src string, mk func() (*Registry, *[]Value)) {
	transforms := []struct {
		name string
		fn   func(int) int
	}{
		{"tri", func(x int) int { return 3*x + 1 }},
		{"sqr", func(x int) int { return x * x }},
		{"neg", func(x int) int { return -x }},
		{"mod", func(x int) int { return x%97 + 7 }},
	}
	nStages := 1 + rng.Intn(3)
	type stage struct {
		fn      int
		workers int
	}
	stages := make([]stage, nStages)
	for i := range stages {
		stages[i] = stage{fn: rng.Intn(len(transforms)), workers: 1 + rng.Intn(5)}
	}
	fanout := 2 + rng.Intn(4)

	var b strings.Builder
	b.WriteString("extern gen : unit -> int list;;\n")
	for _, tr := range transforms {
		fmt.Fprintf(&b, "extern %s : int -> int;;\n", tr.name)
	}
	b.WriteString("extern plus : int -> int -> int;;\n")
	b.WriteString("extern relist : int -> int list;;\n")
	b.WriteString("extern combine : int * int -> int * int;;\n")
	b.WriteString("extern show : int -> unit;;\n")
	b.WriteString("let loop (z, b) =\n")
	cur := "b"
	for i, st := range stages {
		fmt.Fprintf(&b, "  let s%d = df %d %s plus 0 %s in\n",
			i, st.workers, transforms[st.fn].name, cur)
		if i+1 < nStages {
			fmt.Fprintf(&b, "  let l%d = relist s%d in\n", i, i)
			cur = fmt.Sprintf("l%d", i)
		} else {
			cur = fmt.Sprintf("s%d", i)
		}
	}
	fmt.Fprintf(&b, "  combine (z, %s);;\n", cur)
	b.WriteString("let main = itermem gen loop show 0 ();;\n")
	src = b.String()

	mk = func() (*Registry, *[]Value) {
		reg := NewRegistry()
		outs := &[]Value{}
		frame := 0
		reg.Register(&Func{Name: "gen", Sig: "unit -> int list", Arity: 1,
			Fn: func([]Value) Value {
				frame++
				out := make(List, fanout)
				for i := range out {
					out[i] = frame*10 + i
				}
				return out
			}})
		for _, tr := range transforms {
			fn := tr.fn
			reg.Register(&Func{Name: tr.name, Sig: "int -> int", Arity: 1,
				Fn: func(a []Value) Value { return fn(a[0].(int)) }})
		}
		reg.Register(&Func{Name: "plus", Sig: "int -> int -> int", Arity: 2,
			Fn: func(a []Value) Value { return a[0].(int) + a[1].(int) }})
		reg.Register(&Func{Name: "relist", Sig: "int -> int list", Arity: 1,
			Fn: func(a []Value) Value {
				n := a[0].(int)
				return List{n, n + 1, n + 2}
			}})
		reg.Register(&Func{Name: "combine", Sig: "int * int -> int * int", Arity: 1,
			Fn: func(a []Value) Value {
				pr := a[0].(Tuple)
				s := pr[0].(int) + pr[1].(int)
				return Tuple{s, s}
			}})
		reg.Register(&Func{Name: "show", Sig: "int -> unit", Arity: 1,
			Fn: func(a []Value) Value {
				*outs = append(*outs, a[0])
				return Unit{}
			}})
		return reg, outs
	}
	return src, mk
}

func TestRandomPipelinesAllPathsAgree(t *testing.T) {
	const iters = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, mk := randPipeline(rng)

		// Path 1: sequential emulation.
		regE, outsE := mk()
		progE, err := Compile(src, regE)
		if err != nil {
			t.Fatalf("compile:\n%s\n%v", src, err)
		}
		if _, err := eval.New(regE, eval.Options{MaxIters: iters}).Run(progE.AST); err != nil {
			t.Fatalf("emulate: %v", err)
		}

		// Random topology for the parallel paths.
		archs := []*Arch{Ring(1), Ring(4), Ring(7), Chain(5), Star(6),
			Full(4), Grid(2, 3), Torus(2, 2), Hypercube(2)}
		a := archs[rng.Intn(len(archs))]

		// Path 2: goroutine executive.
		regX, outsX := mk()
		progX, err := Compile(src, regX)
		if err != nil {
			t.Fatal(err)
		}
		depX, err := progX.MapOnto(a, Structured)
		if err != nil {
			t.Fatalf("map on %s: %v", a.Name, err)
		}
		if _, err := depX.Run(iters); err != nil {
			t.Fatalf("run on %s: %v", a.Name, err)
		}

		// Path 3: timing simulator.
		regS, outsS := mk()
		progS, err := Compile(src, regS)
		if err != nil {
			t.Fatal(err)
		}
		depS, err := progS.MapOnto(a, Structured)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := depS.Simulate(sim.Options{Iters: iters}); err != nil {
			t.Fatalf("simulate: %v", err)
		}

		if len(*outsE) != iters || len(*outsX) != iters || len(*outsS) != iters {
			t.Fatalf("output counts: emu=%d exec=%d sim=%d",
				len(*outsE), len(*outsX), len(*outsS))
		}
		for i := 0; i < iters; i++ {
			if (*outsE)[i] != (*outsX)[i] || (*outsE)[i] != (*outsS)[i] {
				t.Fatalf("seed %d iteration %d diverged on %s: emu=%v exec=%v sim=%v\n%s",
					seed, i, a.Name, (*outsE)[i], (*outsX)[i], (*outsS)[i], src)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
