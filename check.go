package skipper

import (
	"fmt"

	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/parser"
)

// checkRegistryConsistency cross-checks every extern declaration against the
// registered function: the curried arity must match the declared arrow
// count, and when the registration carries its own signature string the two
// signatures must be alpha-equivalent. This catches the classic drift bug
// where the Caml spec and the C prototype (here: the Go registration)
// silently disagree.
func checkRegistryConsistency(prog *ast.Program, reg *Registry) error {
	for _, d := range prog.Decls {
		ext, ok := d.(*ast.DExtern)
		if !ok {
			continue
		}
		f, ok := reg.Lookup(ext.Name)
		if !ok {
			// Expansion reports unregistered externs with a position;
			// leave that to it.
			continue
		}
		declaredArity := arrowCount(ext.Sig)
		if f.Arity != declaredArity {
			return fmt.Errorf("skipper: extern %s is declared with %d argument(s) (%s) but registered with arity %d",
				ext.Name, declaredArity, ext.Sig, f.Arity)
		}
		if f.Sig == "" {
			continue
		}
		regSig, err := parser.ParseTypeExpr(f.Sig)
		if err != nil {
			return fmt.Errorf("skipper: extern %s: registered signature %q does not parse: %v",
				ext.Name, f.Sig, err)
		}
		if normalizeSig(ext.Sig) != normalizeSig(regSig) {
			return fmt.Errorf("skipper: extern %s declared as %s but registered as %s",
				ext.Name, ext.Sig, f.Sig)
		}
	}
	return nil
}

// arrowCount counts the top-level arrows of a signature (the curried arity).
func arrowCount(te ast.TypeExpr) int {
	n := 0
	for {
		arrow, ok := te.(*ast.TEArrow)
		if !ok {
			return n
		}
		n++
		te = arrow.To
	}
}

// normalizeSig renders a type expression with type variables renamed in
// order of first occurrence, giving a canonical string for alpha-equivalence
// comparison.
func normalizeSig(te ast.TypeExpr) string {
	names := map[string]string{}
	return renameVars(te, names).String()
}

func renameVars(te ast.TypeExpr, names map[string]string) ast.TypeExpr {
	switch te := te.(type) {
	case *ast.TEVar:
		n, ok := names[te.Name]
		if !ok {
			n = fmt.Sprintf("v%d", len(names))
			names[te.Name] = n
		}
		return &ast.TEVar{Name: n}
	case *ast.TECon:
		args := make([]ast.TypeExpr, len(te.Args))
		for i, a := range te.Args {
			args[i] = renameVars(a, names)
		}
		return &ast.TECon{Name: te.Name, Args: args}
	case *ast.TEArrow:
		from := renameVars(te.From, names)
		to := renameVars(te.To, names)
		return &ast.TEArrow{From: from, To: to}
	case *ast.TETuple:
		elems := make([]ast.TypeExpr, len(te.Elems))
		for i, e := range te.Elems {
			elems[i] = renameVars(e, names)
		}
		return &ast.TETuple{Elems: elems}
	}
	return te
}
