package skipper

import (
	"strings"
	"testing"
)

func TestStubRegistryCompilesPaperSpec(t *testing.T) {
	src := `
type img;; type state;; type window;; type mark;;
extern read_img : int * int -> img;;
extern init_state : unit -> state;;
extern get_windows : int -> state -> img -> window list;;
extern detect_mark : window -> mark;;
extern accum_marks : mark list -> mark -> mark list;;
extern predict : mark list -> state * mark list;;
extern display_marks : mark list -> unit;;
extern empty_list : mark list;;
let nproc = 8;;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks empty_list ws in
  predict marks;;
let main = itermem read_img loop display_marks s0 (512, 512);;
`
	reg, err := StubRegistry(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(src, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Stream {
		t.Fatal("stream flag lost")
	}
	// Mapping and macro-code also work with stubs.
	dep, err := prog.MapOnto(Ring(8), Structured)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep.MacroCode(), "worker_(") {
		t.Fatal("macro-code incomplete")
	}
}

func TestStubRegistryArities(t *testing.T) {
	src := `
extern a : int;;
extern b : int -> int;;
extern c : int -> int -> bool -> int;;
extern d : (int -> int) -> int;;
let main = b (c 1 2 true);;
`
	reg, err := StubRegistry(src)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int{"a": 0, "b": 1, "c": 3, "d": 1} {
		f, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if f.Arity != want {
			t.Fatalf("%s arity = %d, want %d", name, f.Arity, want)
		}
	}
	if _, err := Compile(src, reg); err != nil {
		t.Fatal(err)
	}
}

func TestStubRegistrySyntaxErrorPropagates(t *testing.T) {
	if _, err := StubRegistry("extern broken"); err == nil {
		t.Fatal("expected error")
	}
}

func TestOptimizeOnFacade(t *testing.T) {
	src := `
extern one : unit -> int;;
extern sink : int -> unit;;
let unused = one ();;
let main = itermem one (fun p -> p) sink 0 ();;
`
	reg, err := StubRegistry(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(src, reg)
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := len(prog.Graph.Nodes)
	n := prog.Optimize()
	if n == 0 {
		t.Fatal("expected rewrites (unused binding)")
	}
	if len(prog.Graph.Nodes) >= nodesBefore {
		t.Fatalf("graph did not shrink: %d -> %d", nodesBefore, len(prog.Graph.Nodes))
	}
	// Still mappable after optimization.
	if _, err := prog.MapOnto(Ring(2), Structured); err != nil {
		t.Fatal(err)
	}
}

func TestParseArch(t *testing.T) {
	cases := map[string]struct {
		name string
		n    int
	}{
		"ring:8":      {"ring(8)", 8},
		"chain:3":     {"chain(3)", 3},
		"star:5":      {"star(5)", 5},
		"full:4":      {"full(4)", 4},
		"hypercube:3": {"hypercube(3)", 8},
		"grid:3x4":    {"grid(3x4)", 12},
		"torus:2x2":   {"torus(2x2)", 4},
	}
	for in, want := range cases {
		a, err := ParseArch(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if a.Name != want.name || a.N != want.n {
			t.Fatalf("%s: got %s/%d", in, a.Name, a.N)
		}
	}
	for _, bad := range []string{
		"ring", "ring:0", "ring:x", "grid:3", "grid:0x4", "blob:3",
		"torus:axb", "hypercube:99",
	} {
		if _, err := ParseArch(bad); err == nil {
			t.Fatalf("%q should be rejected", bad)
		}
	}
}

func TestRegistrySignatureConsistency(t *testing.T) {
	src := `
type img;;
extern load : int -> img;;
let main = load 1;;
`
	// Matching signature: fine (alpha-renaming tolerated).
	good := NewRegistry()
	good.Register(&Func{Name: "load", Sig: "int -> img", Arity: 1,
		Fn: func([]Value) Value { return "I" }})
	if _, err := Compile(src, good); err != nil {
		t.Fatal(err)
	}

	// Arity mismatch.
	badArity := NewRegistry()
	badArity.Register(&Func{Name: "load", Sig: "int -> img", Arity: 2,
		Fn: func([]Value) Value { return "I" }})
	if _, err := Compile(src, badArity); err == nil ||
		!strings.Contains(err.Error(), "registered with arity 2") {
		t.Fatalf("err = %v", err)
	}

	// Signature mismatch.
	badSig := NewRegistry()
	badSig.Register(&Func{Name: "load", Sig: "bool -> img", Arity: 1,
		Fn: func([]Value) Value { return "I" }})
	if _, err := Compile(src, badSig); err == nil ||
		!strings.Contains(err.Error(), "declared as int -> img but registered as bool -> img") {
		t.Fatalf("err = %v", err)
	}

	// Unparseable registered signature.
	badParse := NewRegistry()
	badParse.Register(&Func{Name: "load", Sig: "int ->", Arity: 1,
		Fn: func([]Value) Value { return "I" }})
	if _, err := Compile(src, badParse); err == nil ||
		!strings.Contains(err.Error(), "does not parse") {
		t.Fatalf("err = %v", err)
	}

	// Empty signature: only arity is checked.
	noSig := NewRegistry()
	noSig.Register(&Func{Name: "load", Arity: 1,
		Fn: func([]Value) Value { return "I" }})
	if _, err := Compile(src, noSig); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrySignatureAlphaEquivalence(t *testing.T) {
	src := `
extern pick : 'x -> 'y -> 'x;;
let main = pick 1 2;;
`
	reg := NewRegistry()
	reg.Register(&Func{Name: "pick", Sig: "'a -> 'b -> 'a", Arity: 2,
		Fn: func(a []Value) Value { return a[0] }})
	if _, err := Compile(src, reg); err != nil {
		t.Fatalf("alpha-equivalent signatures rejected: %v", err)
	}
	// But structurally different variable patterns are rejected.
	reg2 := NewRegistry()
	reg2.Register(&Func{Name: "pick", Sig: "'a -> 'b -> 'b", Arity: 2,
		Fn: func(a []Value) Value { return a[1] }})
	if _, err := Compile(src, reg2); err == nil {
		t.Fatal("non-equivalent signatures accepted")
	}
}
