// Package skipper is a Go reimplementation of SKiPPER, the skeleton-based
// parallel programming environment for real-time image processing of
// Sérot, Ginhac and Dérutin (PaCT-99). It compiles purely functional
// specifications — written in a Caml subset whose only source of
// parallelism is the composition of the four skeletons scm, df, tf and
// itermem — down to a process graph, maps the graph onto an architecture
// description (ring, chain, star, grid, …), and produces a deadlock-free
// distributed executive that can be
//
//   - emulated sequentially against the skeletons' declarative definitions
//     (Program.Emulate),
//   - executed in parallel on goroutine processors connected by channel
//     links (Deployment.Run), or
//   - simulated in virtual time on a model of the Transvision T9000
//     platform (Deployment.Simulate) to reproduce the paper's real-time
//     figures.
//
// The typical flow:
//
//	reg := skipper.NewRegistry()
//	reg.Register(&skipper.Func{Name: "detect", Sig: "window -> mark", ...})
//	prog, err := skipper.Compile(src, reg)
//	dep, err := prog.MapOnto(skipper.Ring(8), skipper.Structured)
//	out, err := dep.Run(100)            // goroutine backend
//	res, err := dep.Simulate(skipper.SimOptions{Iters: 100, FramePeriod: skipper.VideoPeriod})
package skipper

import (
	"fmt"
	"strconv"
	"strings"

	"skipper/internal/arch"
	"skipper/internal/dsl/ast"
	"skipper/internal/dsl/eval"
	"skipper/internal/dsl/parser"
	"skipper/internal/dsl/types"
	"skipper/internal/exec"
	"skipper/internal/expand"
	"skipper/internal/graph"
	"skipper/internal/sim"
	"skipper/internal/syndex"
	"skipper/internal/trans"
	"skipper/internal/value"
)

// Re-exported building blocks, so applications only import this package.
type (
	// Registry holds the application's sequential functions.
	Registry = value.Registry
	// Func describes one registered sequential function.
	Func = value.Func
	// Value is a dynamic program value.
	Value = value.Value
	// Tuple is a tuple value.
	Tuple = value.Tuple
	// List is a list value.
	List = value.List
	// Unit is the unit value.
	Unit = value.Unit
	// Arch is an architecture description.
	Arch = arch.Arch
	// SimOptions configures timing simulation.
	SimOptions = sim.Options
	// SimResult is a timing simulation outcome.
	SimResult = sim.Result
	// Strategy selects the distribution heuristic.
	Strategy = syndex.Strategy
)

// Distribution strategies.
const (
	// Structured is SKiPPER's canonical skeleton-aware placement.
	Structured = syndex.Structured
	// ListSched is the generic list-scheduling baseline.
	ListSched = syndex.ListSched
)

// VideoPeriod is the 25 Hz camera frame period in seconds.
const VideoPeriod = sim.VideoPeriod

// NewRegistry returns an empty function registry.
func NewRegistry() *Registry { return value.NewRegistry() }

// Topology constructors (Transvision-calibrated timing defaults).
var (
	Ring      = arch.Ring
	Chain     = arch.Chain
	Star      = arch.Star
	Full      = arch.Full
	Grid      = arch.Grid
	Torus     = arch.Torus
	Hypercube = arch.Hypercube
)

// Program is a compiled specification: parsed, type-checked and expanded
// into a process graph.
type Program struct {
	Source string
	// AST is the parsed program.
	AST *ast.Program
	// Types holds the inference results (schemes of top-level bindings).
	Types *types.Info
	// Graph is the expanded process network.
	Graph *graph.Graph
	// Stream reports whether the program is an itermem stream program.
	Stream bool

	reg    *value.Registry
	expRes *expand.Result
}

// Compile parses, type-checks and skeleton-expands a specification against
// the registry of sequential functions.
func Compile(src string, reg *Registry) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, err
	}
	if err := checkRegistryConsistency(prog, reg); err != nil {
		return nil, err
	}
	res, err := expand.Expand(prog, info, reg)
	if err != nil {
		return nil, err
	}
	return &Program{
		Source: src,
		AST:    prog,
		Types:  info,
		Graph:  res.Graph,
		Stream: res.Stream,
		reg:    reg,
		expRes: res,
	}, nil
}

// Optimize applies the semantics-preserving graph transformation rules
// (dead-node elimination, constant deduplication, pack/unpack
// cancellation — see internal/trans) and returns the number of rewrites.
// The paper's conclusion singles out such inter-skeleton transformational
// rules as the next step beyond the 1999 prototype.
func (p *Program) Optimize() int {
	g, stats := trans.Optimize(p.Graph)
	p.Graph = g
	p.expRes.Graph = g
	return stats.Total()
}

// TypeOf returns the inferred type of a top-level binding as a string.
func (p *Program) TypeOf(name string) (string, bool) {
	s, ok := p.Types.Types[name]
	if !ok {
		return "", false
	}
	return s.String(), true
}

// DOT renders the process graph in Graphviz format.
func (p *Program) DOT(title string) string { return p.Graph.DOT(title) }

// Emulate runs the specification through the sequential emulator (the
// declarative skeleton semantics) for the given number of itermem
// iterations, calling the registered functions directly.
func (p *Program) Emulate(iters int) error {
	_, err := eval.New(p.reg, eval.Options{MaxIters: iters}).Run(p.AST)
	return err
}

// MapOnto distributes and schedules the program on an architecture.
func (p *Program) MapOnto(a *Arch, strat Strategy) (*Deployment, error) {
	if p.expRes.ConstFolded {
		return nil, fmt.Errorf("skipper: program folded to the constant %s; nothing to deploy",
			value.Show(p.expRes.MainConst))
	}
	s, err := syndex.Map(p.Graph, a, p.reg, strat)
	if err != nil {
		return nil, err
	}
	return &Deployment{Program: p, Schedule: s}, nil
}

// Deployment is a program mapped onto a target architecture: the
// distributed executive in its processor-independent form.
type Deployment struct {
	Program  *Program
	Schedule *syndex.Schedule
}

// MacroCode renders the executive as m4-style macro-code.
func (d *Deployment) MacroCode() string { return d.Schedule.MacroCode() }

// Summary renders the process-to-processor placement.
func (d *Deployment) Summary() string { return d.Schedule.Summary() }

// Run executes the deployment on the goroutine backend (one goroutine per
// processor, channels as links) for iters iterations, returning the output
// value of each iteration.
func (d *Deployment) Run(iters int) ([]Value, error) {
	res, err := exec.NewMachine(d.Schedule, d.Program.reg).Run(iters)
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// RunDeterministic is Run with deterministic df accumulation order (input
// order instead of arrival order), lifting the paper's requirement that the
// accumulating function be commutative — useful when diffing against the
// sequential emulation.
func (d *Deployment) RunDeterministic(iters int) ([]Value, error) {
	m := exec.NewMachine(d.Schedule, d.Program.reg)
	m.DeterministicFarm = true
	res, err := m.Run(iters)
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// Simulate executes the deployment on the Transvision timing model.
func (d *Deployment) Simulate(opts SimOptions) (*SimResult, error) {
	return sim.Run(d.Schedule, d.Program.reg, opts)
}

// ParseArch parses an architecture description string of the form used by
// the CLI tools: "ring:8", "chain:4", "star:5", "full:4", "hypercube:3",
// "grid:3x4", "torus:4x4".
func ParseArch(s string) (*Arch, error) {
	kind, argStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("skipper: bad architecture %q (want kind:N)", s)
	}
	if kind == "grid" || kind == "torus" {
		ws, hs, ok := strings.Cut(argStr, "x")
		if !ok {
			return nil, fmt.Errorf("skipper: bad %s %q (want %s:WxH)", kind, argStr, kind)
		}
		w, err1 := strconv.Atoi(ws)
		h, err2 := strconv.Atoi(hs)
		if err1 != nil || err2 != nil || w < 1 || h < 1 {
			return nil, fmt.Errorf("skipper: bad %s size %q", kind, argStr)
		}
		if kind == "torus" {
			return Torus(w, h), nil
		}
		return Grid(w, h), nil
	}
	n, err := strconv.Atoi(argStr)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("skipper: bad processor count %q", argStr)
	}
	switch kind {
	case "ring":
		return Ring(n), nil
	case "chain":
		return Chain(n), nil
	case "star":
		return Star(n), nil
	case "full":
		return Full(n), nil
	case "hypercube":
		if n > 16 {
			return nil, fmt.Errorf("skipper: hypercube dimension %d too large", n)
		}
		return Hypercube(n), nil
	}
	return nil, fmt.Errorf("skipper: unknown topology %q", kind)
}
