// Quickstart: a complete SKiPPER program in ~60 lines.
//
// The specification is the paper's df skeleton over a list of numbers:
// square each element on a farm of 4 workers and sum the results. The same
// source is (1) emulated sequentially, (2) executed on goroutine
// "Transputers" connected in a ring, and (3) simulated on the timing model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skipper"
)

const spec = `
extern numbers : int -> int list;;
extern square  : int -> int;;
extern add     : int -> int -> int;;

let main = df 4 square add 0 (numbers 20);;
`

func registry() *skipper.Registry {
	reg := skipper.NewRegistry()
	reg.Register(&skipper.Func{
		Name: "numbers", Sig: "int -> int list", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			n := args[0].(int)
			out := make(skipper.List, n)
			for i := range out {
				out[i] = i + 1
			}
			return out
		},
	})
	reg.Register(&skipper.Func{
		Name: "square", Sig: "int -> int", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			x := args[0].(int)
			return x * x
		},
		// 1M cycles per task on the simulated 20 MHz Transputer (50 ms):
		// coarse enough to show real speedup in the timing model.
		Cost: func([]skipper.Value) int64 { return 1_000_000 },
	})
	reg.Register(&skipper.Func{
		Name: "add", Sig: "int -> int -> int", Arity: 2,
		Fn: func(args []skipper.Value) skipper.Value {
			return args[0].(int) + args[1].(int)
		},
	})
	return reg
}

func main() {
	prog, err := skipper.Compile(spec, registry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled; inferred types:")
	ty, _ := prog.TypeOf("main")
	fmt.Printf("  val main : %s\n\n", ty)

	// 1. Parallel execution on a ring of 4 goroutine processors.
	dep, err := prog.MapOnto(skipper.Ring(4), skipper.Structured)
	if err != nil {
		log.Fatal(err)
	}
	outs, err := dep.Run(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executive result: sum of squares 1..20 = %v\n", outs[0])

	// 2. Timing simulation on 1 vs 4 Transputers.
	for _, n := range []int{1, 4} {
		d, err := prog.MapOnto(skipper.Ring(n), skipper.Structured)
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Simulate(skipper.SimOptions{Iters: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated on ring(%d): %6.1f ms\n", n, res.Total*1000)
	}

	fmt.Println("\nplacement on ring(4):")
	fmt.Print(dep.Summary())
}
