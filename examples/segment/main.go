// Segment: divide-and-conquer region segmentation with the tf (task
// farming) skeleton — the skeleton the paper introduces for "so-called
// divide-and-conquer algorithms" in which "each worker can recursively
// generate new packets to be processed" (§2).
//
// A frame is segmented quadtree-style: a worker receiving a region either
// declares it homogeneous (below the brightness-variation threshold) and
// emits it as a result, or splits it into four quadrants that flow back to
// the master as new tasks. The output is the list of homogeneous regions —
// a coarse segmentation of the scene.
//
// Run with: go run ./examples/segment
package main

import (
	"fmt"
	"log"
	"sort"

	"skipper"
	"skipper/internal/video"
	"skipper/internal/vision"
)

const minRegion = 16 // stop splitting below 16x16

// region couples a rectangle with a homogeneity verdict.
type region struct {
	Rect vision.Rect
	Mean float64
}

func homogeneous(im *vision.Image, r vision.Rect) (bool, float64) {
	if r.Area() == 0 {
		return true, 0
	}
	var sum, sum2 int64
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			v := int64(im.At(x, y))
			sum += v
			sum2 += v * v
		}
	}
	n := int64(r.Area())
	mean := float64(sum) / float64(n)
	variance := float64(sum2)/float64(n) - mean*mean
	return variance < 200, mean
}

func registry(frame *vision.Image, nproc int) *skipper.Registry {
	reg := skipper.NewRegistry()
	reg.Register(&skipper.Func{
		Name: "whole_frame", Sig: "rect list", Arity: 0,
		Fn: func([]skipper.Value) skipper.Value {
			return skipper.List{vision.Rect{X0: 0, Y0: 0, X1: frame.W, Y1: frame.H}}
		},
	})
	reg.Register(&skipper.Func{
		Name: "split_region", Sig: "rect -> region list * rect list", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			r := args[0].(vision.Rect)
			ok, mean := homogeneous(frame, r)
			if ok || r.W() <= minRegion || r.H() <= minRegion {
				return skipper.Tuple{
					skipper.List{region{Rect: r, Mean: mean}},
					skipper.List{},
				}
			}
			mx, my := (r.X0+r.X1)/2, (r.Y0+r.Y1)/2
			quads := skipper.List{
				vision.Rect{X0: r.X0, Y0: r.Y0, X1: mx, Y1: my},
				vision.Rect{X0: mx, Y0: r.Y0, X1: r.X1, Y1: my},
				vision.Rect{X0: r.X0, Y0: my, X1: mx, Y1: r.Y1},
				vision.Rect{X0: mx, Y0: my, X1: r.X1, Y1: r.Y1},
			}
			return skipper.Tuple{skipper.List{}, quads}
		},
		Cost: func(args []skipper.Value) int64 {
			r := args[0].(vision.Rect)
			return 10_000 + int64(r.Area())*12 // per-pixel variance analysis
		},
	})
	reg.Register(&skipper.Func{
		Name: "collect", Sig: "region list -> region -> region list", Arity: 2,
		Fn: func(args []skipper.Value) skipper.Value {
			acc := args[0].(skipper.List)
			return append(append(skipper.List{}, acc...), args[1])
		},
	})
	return reg
}

func spec(nproc int) string {
	return fmt.Sprintf(`
type rect;; type region;;
extern whole_frame  : rect list;;
extern split_region : rect -> region list * rect list;;
extern collect      : region list -> region -> region list;;
let main = tf %d split_region collect [] whole_frame;;
`, nproc)
}

func main() {
	scene := video.NewScene(256, 256, 2, 23)
	frame := scene.Next()

	const nproc = 4
	prog, err := skipper.Compile(spec(nproc), registry(frame, nproc))
	if err != nil {
		log.Fatal(err)
	}
	dep, err := prog.MapOnto(skipper.Ring(nproc), skipper.Structured)
	if err != nil {
		log.Fatal(err)
	}
	outs, err := dep.Run(1)
	if err != nil {
		log.Fatal(err)
	}
	regions := outs[0].(skipper.List)
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i].(region), regions[j].(region)
		return a.Rect.Area() > b.Rect.Area()
	})
	fmt.Printf("tf segmentation: %d homogeneous regions\n", len(regions))
	fmt.Println("largest regions:")
	for i := 0; i < len(regions) && i < 8; i++ {
		r := regions[i].(region)
		fmt.Printf("  %v  mean gray %.1f\n", r.Rect, r.Mean)
	}

	// Parallel scaling of the task farm on the timing model.
	fmt.Println("\nsimulated task-farm scaling:")
	fmt.Println("  P    makespan")
	for _, p := range []int{1, 2, 4, 8} {
		pr, err := skipper.Compile(spec(p), registry(frame, p))
		if err != nil {
			log.Fatal(err)
		}
		d, err := pr.MapOnto(skipper.Ring(p), skipper.Structured)
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Simulate(skipper.SimOptions{Iters: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3d  %7.1f ms\n", p, res.Total*1000)
	}
}
