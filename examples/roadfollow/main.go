// Roadfollow: white-line detection for road following (the application of
// the paper's reference [6], Ginhac's PhD work), built from the scm
// skeleton inside an itermem loop.
//
// Each frame shows a lane marking as a bright, slightly curved stripe. The
// image is split into horizontal bands; each band extracts its brightest
// point per row and fits a local line segment; the merge stage fuses the
// per-band fits into one global lane estimate, from which a steering value
// is derived and threaded through the itermem memory (exponential
// smoothing across frames).
//
// Run with: go run ./examples/roadfollow
package main

import (
	"fmt"
	"log"
	"math"

	"skipper"
	"skipper/internal/vision"
)

const (
	w, h   = 256, 256
	bands  = 8
	thresh = 180
)

// lineScene renders frames with a bright lane marking x = a*y + b whose
// parameters drift smoothly over time.
type lineScene struct {
	frame int
}

func (s *lineScene) next() *vision.Image {
	im := vision.NewImage(w, h)
	// Road texture.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint8(40+30*y/h))
		}
	}
	a := 0.3 * math.Sin(float64(s.frame)/15)
	b := float64(w)/2 + 20*math.Cos(float64(s.frame)/23)
	for y := 0; y < h; y++ {
		x := int(a*float64(y) + b)
		for dx := -2; dx <= 2; dx++ {
			im.Set(x+dx, y, 230)
		}
	}
	s.frame++
	return im
}

// bandFit couples a band's line fit with the band geometry for the merge.
type bandFit struct {
	fit  vision.Line
	band vision.Rect
}

type steering struct {
	Angle  float64 // estimated lane slope
	Offset float64 // lane x at the bottom of the frame
}

func registry(scene *lineScene, outs *[]steering) *skipper.Registry {
	reg := skipper.NewRegistry()
	reg.Register(&skipper.Func{
		Name: "grab", Sig: "unit -> img", Arity: 1,
		Fn:   func([]skipper.Value) skipper.Value { return scene.next() },
		Cost: func([]skipper.Value) int64 { return 20_000 },
	})
	reg.Register(&skipper.Func{
		Name: "split_bands", Sig: "img -> band list", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			im := args[0].(*vision.Image)
			out := make(skipper.List, 0, bands)
			for _, r := range vision.SplitGrid(im.W, im.H, bands) {
				out = append(out, vision.Extract(im, r))
			}
			return out
		},
		Cost: func([]skipper.Value) int64 { return 10_000 + w*h },
	})
	reg.Register(&skipper.Func{
		Name: "fit_band", Sig: "band -> fit", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			win := args[0].(vision.Window)
			xs, ys := vision.RowMaxima(win.Img, vision.Rect{X0: 0, Y0: 0, X1: win.Img.W, Y1: win.Img.H}, thresh)
			// Shift rows back to frame coordinates before fitting.
			for i := range ys {
				ys[i] += float64(win.Origin.Y0)
			}
			return bandFit{fit: vision.FitLine(xs, ys), band: win.Origin}
		},
		Cost: func(args []skipper.Value) int64 {
			win := args[0].(vision.Window)
			return 15_000 + int64(win.Origin.Area())*8
		},
	})
	reg.Register(&skipper.Func{
		Name: "merge_fits", Sig: "fit list -> fit", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			var fits []vision.Line
			var rects []vision.Rect
			for _, v := range args[0].(skipper.List) {
				bf := v.(bandFit)
				fits = append(fits, bf.fit)
				rects = append(rects, bf.band)
			}
			return bandFit{fit: vision.MergeFits(fits, rects),
				band: vision.Rect{X0: 0, Y0: 0, X1: w, Y1: h}}
		},
		Cost: func([]skipper.Value) int64 { return 30_000 },
	})
	reg.Register(&skipper.Func{
		Name: "steer", Sig: "state * fit -> state * state", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			pr := args[0].(skipper.Tuple)
			prev := pr[0].(steering)
			bf := pr[1].(bandFit)
			// Exponential smoothing across frames: the itermem memory.
			const alpha = 0.5
			cur := steering{
				Angle:  alpha*bf.fit.A + (1-alpha)*prev.Angle,
				Offset: alpha*bf.fit.XAt(h-1) + (1-alpha)*prev.Offset,
			}
			return skipper.Tuple{cur, cur}
		},
		Cost: func([]skipper.Value) int64 { return 8_000 },
	})
	reg.Register(&skipper.Func{
		Name: "emit", Sig: "state -> unit", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			*outs = append(*outs, args[0].(steering))
			return skipper.Unit{}
		},
		Cost: func([]skipper.Value) int64 { return 2_000 },
	})
	reg.Register(&skipper.Func{
		Name: "s0", Sig: "state", Arity: 0,
		Fn: func([]skipper.Value) skipper.Value {
			return steering{Offset: w / 2}
		},
	})
	return reg
}

const spec = `
type img;; type band;; type fit;; type state;;
extern grab        : unit -> img;;
extern split_bands : img -> band list;;
extern fit_band    : band -> fit;;
extern merge_fits  : fit list -> fit;;
extern steer       : state * fit -> state * state;;
extern emit        : state -> unit;;
extern s0          : state;;

let loop (z, im) =
  let f = scm 8 split_bands fit_band merge_fits im in
  steer (z, f);;
let main = itermem grab loop emit s0 ();;
`

func main() {
	const iters = 60
	scene := &lineScene{}
	var outs []steering
	prog, err := skipper.Compile(spec, registry(scene, &outs))
	if err != nil {
		log.Fatal(err)
	}
	dep, err := prog.MapOnto(skipper.Ring(8), skipper.Structured)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dep.Run(iters); err != nil {
		log.Fatal(err)
	}

	fmt.Println("road following: smoothed lane estimate per frame")
	for i := 0; i < len(outs); i += 10 {
		fmt.Printf("  frame %2d: slope %+6.3f, offset at bottom %6.1f px\n",
			i, outs[i].Angle, outs[i].Offset)
	}

	// Accuracy check against the generator's ground truth on the last frame.
	last := outs[len(outs)-1]
	trueA := 0.3 * math.Sin(float64(iters-1)/15)
	fmt.Printf("\nfinal slope estimate %+.3f (ground truth %+.3f)\n", last.Angle, trueA)

	// Timing on the Transvision model.
	scene2 := &lineScene{}
	var outs2 []steering
	prog2, err := skipper.Compile(spec, registry(scene2, &outs2))
	if err != nil {
		log.Fatal(err)
	}
	dep2, err := prog2.MapOnto(skipper.Ring(8), skipper.Structured)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep2.Simulate(skipper.SimOptions{Iters: 20, FramePeriod: skipper.VideoPeriod})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated latency on ring(8): %.1f ms mean, %d frames skipped\n",
		res.MeanLatency(2)*1000, res.FramesSkipped)
}
