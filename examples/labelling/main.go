// Labelling: connected-component labelling with the scm skeleton (the
// application of the paper's reference [7]: "Fast prototyping of image
// processing applications using functional skeletons on a MIMD-DM
// architecture").
//
// A 512x512 frame is split into horizontal bands (geometric decomposition),
// each band is labelled independently, and the per-band components are
// merged across the band boundaries — the archetypal Split/Compute/Merge
// pattern. The example prints the detected components and a speedup table.
//
// Run with: go run ./examples/labelling
package main

import (
	"fmt"
	"log"

	"skipper"
	"skipper/internal/track"
	"skipper/internal/video"
	"skipper/internal/vision"
)

func registry(frame *vision.Image, bands int) *skipper.Registry {
	reg := skipper.NewRegistry()
	reg.Register(&skipper.Func{
		Name: "the_img", Sig: "img", Arity: 0,
		Fn: func([]skipper.Value) skipper.Value { return frame },
	})
	reg.Register(&skipper.Func{
		Name: "split_bands", Sig: "img -> window list", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			im := args[0].(*vision.Image)
			out := make(skipper.List, 0, bands)
			for _, r := range vision.SplitGrid(im.W, im.H, bands) {
				out = append(out, vision.Extract(im, r))
			}
			return out
		},
		Cost: func(args []skipper.Value) int64 {
			im := args[0].(*vision.Image)
			return 10_000 + int64(im.W*im.H)
		},
	})
	reg.Register(&skipper.Func{
		Name: "label_band", Sig: "window -> comps", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			w := args[0].(vision.Window)
			return track.Detections(track.DetectMarks(w))
		},
		Cost: func(args []skipper.Value) int64 {
			w := args[0].(vision.Window)
			return track.FixedDetectCycles +
				int64(w.Origin.Area())*track.CyclesPerPixelDetect
		},
	})
	reg.Register(&skipper.Func{
		Name: "merge_bands", Sig: "comps list -> comps", Arity: 1,
		Fn: func(args []skipper.Value) skipper.Value {
			var all []track.Mark
			for _, d := range args[0].(skipper.List) {
				all = append(all, d.(track.Detections)...)
			}
			// Components split across a band boundary are fused here.
			return track.Detections(track.MergeDuplicates(all))
		},
		Cost: func([]skipper.Value) int64 { return 50_000 },
	})
	return reg
}

func spec(bands int) string {
	return fmt.Sprintf(`
type img;; type window;; type comps;;
extern the_img     : img;;
extern split_bands : img -> window list;;
extern label_band  : window -> comps;;
extern merge_bands : comps list -> comps;;
let main = scm %d split_bands label_band merge_bands the_img;;
`, bands)
}

func main() {
	scene := video.NewScene(512, 512, 3, 17)
	frame := scene.Next()

	// Run once on the goroutine executive and show what was found.
	const bands = 8
	prog, err := skipper.Compile(spec(bands), registry(frame, bands))
	if err != nil {
		log.Fatal(err)
	}
	dep, err := prog.MapOnto(skipper.Ring(bands), skipper.Structured)
	if err != nil {
		log.Fatal(err)
	}
	outs, err := dep.Run(1)
	if err != nil {
		log.Fatal(err)
	}
	comps := outs[0].(track.Detections)
	fmt.Printf("scm labelling found %d bright components in the frame:\n", len(comps))
	for i, c := range comps {
		fmt.Printf("  %2d: centroid (%6.1f, %6.1f)  area %4d  bbox %v\n",
			i, c.CX, c.CY, c.Area, c.BBox)
	}

	// Sequential reference for comparison.
	ref := vision.Components(frame, video.DetectThreshold, track.MinMarkArea)
	fmt.Printf("sequential reference finds %d components\n\n", len(ref))

	// Speedup table on the timing model.
	fmt.Println("simulated speedup (ring of T9000s):")
	fmt.Println("  P    total        speedup")
	base := 0.0
	for _, p := range []int{1, 2, 4, 8, 16} {
		pr, err := skipper.Compile(spec(p), registry(frame, p))
		if err != nil {
			log.Fatal(err)
		}
		d, err := pr.MapOnto(skipper.Ring(p), skipper.Structured)
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Simulate(skipper.SimOptions{Iters: 1})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Total
		}
		fmt.Printf("  %-3d  %8.1f ms  %6.2fx\n", p, res.Total*1000, base/res.Total)
	}
}
