// Tracking: the paper's §4 case study end-to-end — real-time detection and
// tracking of lead vehicles carrying three visual marks, over a synthetic
// road scene.
//
// The program compiles the verbatim Caml specification (df farm inside an
// itermem loop), shows the generated process graph and macro-code, runs the
// goroutine executive for a few seconds of video, and then reproduces the
// paper's latency measurements on the Transvision timing model.
//
// Run with: go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"os"

	"skipper"
	"skipper/internal/track"
	"skipper/internal/video"
	"skipper/internal/vision"
)

func main() {
	const (
		procs    = 8
		size     = 512
		vehicles = 3
		iters    = 40
	)

	// --- compile ------------------------------------------------------
	scene := video.NewScene(size, size, vehicles, 3)
	reg, rec := track.NewRegistry(scene, os.Stdout)
	prog, err := skipper.Compile(track.ProgramSource(procs, size, size), reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specification compiled; types:")
	for _, n := range []string{"loop", "main"} {
		ty, _ := prog.TypeOf(n)
		fmt.Printf("  val %s : %s\n", n, ty)
	}
	st := prog.Graph.Stats()
	fmt.Printf("process graph: %d nodes (%d workers), %d edges\n\n",
		st.Nodes, st.WorkerNodes, st.Edges)

	// --- run on the goroutine executive --------------------------------
	dep, err := prog.MapOnto(skipper.Ring(procs), skipper.Structured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d iterations on the goroutine executive (ring(%d)):\n",
		iters, procs)
	if _, err := dep.Run(iters); err != nil {
		log.Fatal(err)
	}
	locked := 0
	for _, r := range rec.Results {
		if r.Tracking {
			locked++
		}
	}
	fmt.Printf("\nlock ratio: %d/%d iterations in tracking phase\n\n",
		locked, len(rec.Results))

	// --- reproduce the paper's timing ----------------------------------
	scene2 := video.NewScene(size, size, vehicles, 3)
	reg2, rec2 := track.NewRegistry(scene2, nil)
	prog2, err := skipper.Compile(track.ProgramSource(procs, size, size), reg2)
	if err != nil {
		log.Fatal(err)
	}
	dep2, err := prog2.MapOnto(skipper.Ring(procs), skipper.Structured)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep2.Simulate(skipper.SimOptions{
		Iters: iters, FramePeriod: skipper.VideoPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	var trackMS, reinitMS []float64
	for i, r := range rec2.Results {
		if i >= len(res.Iters) {
			break
		}
		if r.Tracking {
			trackMS = append(trackMS, res.Iters[i].Latency*1000)
		} else {
			reinitMS = append(reinitMS, res.Iters[i].Latency*1000)
		}
	}
	fmt.Printf("Transvision timing model (%d x T9000, 25 Hz 512x512):\n", procs)
	fmt.Printf("  tracking latency: %6.1f ms  (paper:  30 ms)\n", mean(trackMS))
	fmt.Printf("  reinit latency:   %6.1f ms  (paper: 110 ms)\n", mean(reinitMS))
	fmt.Printf("  frames skipped:   %d\n", res.FramesSkipped)

	// Render one annotated frame (the paper's Fig. 3: marks with their
	// englobing frames) to a PGM file any image viewer can open.
	writeAnnotatedFrame(rec2)
}

// writeAnnotatedFrame re-renders the scene and overlays the last tracked
// mark set, writing /tmp/skipper-fig3.pgm.
func writeAnnotatedFrame(rec *track.Recorder) {
	scene := video.NewScene(512, 512, 3, 3)
	var frame *vision.Image
	for i := 0; i < len(rec.Results); i++ {
		frame = scene.Next()
	}
	if frame == nil || len(rec.Results) == 0 {
		return
	}
	last := rec.Results[len(rec.Results)-1]
	for _, m := range last.Marks {
		vision.DrawRect(frame, m.BBox.Inflate(6, frame.W, frame.H), 255)
	}
	f, err := os.Create("/tmp/skipper-fig3.pgm")
	if err != nil {
		log.Printf("annotated frame: %v", err)
		return
	}
	defer f.Close()
	if err := vision.EncodePGM(f, frame); err != nil {
		log.Printf("annotated frame: %v", err)
		return
	}
	fmt.Printf("\nannotated frame (Fig. 3 style) written to /tmp/skipper-fig3.pgm (%d marks boxed)\n",
		len(last.Marks))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
