package skipper

// One testing.B benchmark per experiment of the paper's evaluation (see
// DESIGN.md §4 and EXPERIMENTS.md), plus microbenchmarks for the core
// stages (compiler, skeleton library, vision kernels, executive).
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"testing"

	"skipper/internal/harness"
	"skipper/internal/skel"
	"skipper/internal/track"
	"skipper/internal/video"
	"skipper/internal/vision"
)

// --- E1: tracking/reinit latency table -------------------------------------

func BenchmarkE1_TrackingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E1(io.Discard, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: scaling with processor count ---------------------------------------

func BenchmarkE2_Scaling(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.E2(io.Discard, 10, []int{p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: skeleton vs hand-crafted -------------------------------------------

func BenchmarkE3_SkeletonVsHandcraft(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E3(io.Discard, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: emulation ≡ executive ≡ simulator ----------------------------------

func BenchmarkE4_PathEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.E4(io.Discard, 10)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("paths diverged")
		}
	}
}

// --- E5: dynamic load balancing vs static split -----------------------------

func BenchmarkE5_LoadBalancing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E5(io.Discard, 32, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: itermem frame pacing ------------------------------------------------

func BenchmarkE6_FramePacing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E6(io.Discard, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: scm labelling speedup -----------------------------------------------

func BenchmarkE7_LabellingSpeedup(b *testing.B) {
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.E7(io.Discard, []int{p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: tf divide-and-conquer -------------------------------------------------

func BenchmarkE8_TaskFarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E8(io.Discard, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: programmability accounting (compiler throughput) ---------------------

func BenchmarkE9_Programmability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- core microbenchmarks ------------------------------------------------------

// BenchmarkCompile measures the full front end + expansion + mapping on the
// paper's application (the paper's programmability story rests on this
// being fast: "almost instantaneous to get variant versions").
func BenchmarkCompile(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	for i := 0; i < b.N; i++ {
		reg, _ := track.NewRegistry(scene, nil)
		prog, err := Compile(track.ProgramSource(8, 512, 512), reg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.MapOnto(Ring(8), Structured); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutiveIteration measures one iteration of the tracking
// application on the goroutine backend (real parallelism, host time).
func BenchmarkExecutiveIteration(b *testing.B) {
	scene := video.NewScene(256, 256, 2, 1)
	reg, _ := track.NewRegistry(scene, nil)
	prog, err := Compile(track.ProgramSource(8, 256, 256), reg)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := prog.MapOnto(Ring(8), Structured)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := dep.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEmulationIteration measures the sequential emulation path.
func BenchmarkEmulationIteration(b *testing.B) {
	scene := video.NewScene(256, 256, 2, 1)
	reg, _ := track.NewRegistry(scene, nil)
	prog, err := Compile(track.ProgramSource(8, 256, 256), reg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := prog.Emulate(b.N); err != nil {
		b.Fatal(err)
	}
}

// Skeleton library: operational vs declarative df on a host-parallel
// workload.
func benchDFWorkload() ([]int, func(int) int, func(int, int) int) {
	xs := make([]int, 512)
	for i := range xs {
		xs[i] = i
	}
	comp := func(x int) int {
		s := 0
		for k := 0; k < 2000; k++ {
			s += (x + k) % 7
		}
		return s
	}
	acc := func(a, b int) int { return a + b }
	return xs, comp, acc
}

func BenchmarkSkelDFSeq(b *testing.B) {
	xs, comp, acc := benchDFWorkload()
	for i := 0; i < b.N; i++ {
		skel.DFSeq(8, comp, acc, 0, xs)
	}
}

func BenchmarkSkelDFPar(b *testing.B) {
	xs, comp, acc := benchDFWorkload()
	for i := 0; i < b.N; i++ {
		skel.DFPar(8, comp, acc, 0, xs)
	}
}

func BenchmarkSkelSCMPar(b *testing.B) {
	xs, comp, acc := benchDFWorkload()
	split := func(v []int) [][]int {
		var out [][]int
		for i := 0; i < 8; i++ {
			out = append(out, v[i*len(v)/8:(i+1)*len(v)/8])
		}
		return out
	}
	sum := func(v []int) int {
		s := 0
		for _, x := range v {
			s += comp(x)
		}
		return s
	}
	merge := func(v []int) int {
		s := 0
		for _, x := range v {
			s += acc(0, x)
		}
		return s
	}
	for i := 0; i < b.N; i++ {
		skel.SCMPar(8, split, sum, merge, xs)
	}
}

// Vision kernels.
func BenchmarkVisionLabel512(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	frame := scene.Next()
	b.SetBytes(int64(frame.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.Components(frame, video.DetectThreshold, 2)
	}
}

func BenchmarkVisionThreshold512(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	frame := scene.Next()
	b.SetBytes(int64(frame.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.Threshold(frame, video.DetectThreshold)
	}
}

func BenchmarkVideoFrame512(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scene.Next()
	}
}

// --- hot-path allocation benchmarks -------------------------------------------
//
// These pin the perf contract of the pooled/in-place kernel variants: with
// reused scratch the per-frame cost is pure compute, 0 allocs/op at steady
// state. Compare Label512 vs Label512_OneShot to see the win.

func BenchmarkLabel512(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	frame := scene.Next()
	var s vision.LabelScratch
	s.Label(frame, video.DetectThreshold)
	b.SetBytes(int64(frame.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Label(frame, video.DetectThreshold)
	}
}

func BenchmarkLabel512_OneShot(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	frame := scene.Next()
	b.SetBytes(int64(frame.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.Label(frame, video.DetectThreshold)
	}
}

func BenchmarkThresholdInto512(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	frame := scene.Next()
	dst := vision.NewImage(frame.W, frame.H)
	b.SetBytes(int64(frame.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.ThresholdInto(dst, frame, video.DetectThreshold)
	}
}

func BenchmarkExtractInto512Band(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 1)
	frame := scene.Next()
	band := vision.Rect{X0: 0, Y0: 0, X1: 512, Y1: 64}
	var win vision.Window
	vision.ExtractInto(&win, frame, band)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.ExtractInto(&win, frame, band)
	}
}

func BenchmarkSceneNextInto512(b *testing.B) {
	scene := video.NewScene(512, 512, 3, 2)
	buf := vision.NewImage(512, 512)
	b.SetBytes(int64(buf.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scene.NextInto(buf)
	}
}

// Pool-backed df vs the per-call shared-pool wrapper on the same workload:
// the pool variant reuses persistent workers instead of spawning per call.
func BenchmarkSkelDFPool(b *testing.B) {
	xs, comp, acc := benchDFWorkload()
	pool := skel.NewPool(8)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skel.DFOn(pool, 8, comp, acc, 0, xs)
	}
}

// --- E10: mapping strategy ablation -----------------------------------------

func BenchmarkE10_StrategyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E10(io.Discard, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: topology sensitivity ------------------------------------------------

func BenchmarkE11_Topologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E11(io.Discard, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Transport: in-process vs TCP farm round trip ----------------------------

// BenchmarkTransportFarmRoundTrip measures one df-farm task/reply round
// trip (the per-window message pattern of OpMaster/OpWorker) over each
// executive transport backend: "mem" is the in-process mailbox substrate,
// "tcp" a hub/client pair on a real localhost socket. The scalar payload
// is the round-trip floor; the window payload ships the 512×64 image band
// the tracking schedule sends per df window, so the mem-vs-tcp delta is
// the per-window cost of going multi-process.
func BenchmarkTransportFarmRoundTrip(b *testing.B) {
	payloads := []struct {
		name string
		mk   func() harness.Payload
	}{
		{"Scalar", harness.BenchScalarPayload},
		{"Window512x64", harness.BenchWindowPayload},
	}
	for _, tr := range harness.Transports {
		for _, pl := range payloads {
			b.Run(tr+"/"+pl.name, func(b *testing.B) {
				pair, err := harness.NewTransportPair(tr)
				if err != nil {
					b.Fatal(err)
				}
				defer pair.Close()
				b.ReportAllocs()
				harness.BenchFarmRoundTrip(b, pair, pl.mk())
			})
		}
	}
}
