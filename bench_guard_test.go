package skipper

// Tier-1 benchmark guard: if a BENCH_N.json perf snapshot is present at the
// repository root (written by `skipper-bench -json`, see the README's
// Performance section), check that the recorded E1 latency table still sits
// inside the paper's envelope — tracking below 40 ms and reinitialization
// between 80 and 120 ms of simulated time. A calibration or executive
// regression that drifts the simulated pipeline out of the paper's regime
// then fails tier-1 instead of silently shipping a stale snapshot.
//
// The test skips when no snapshot exists so a fresh checkout stays green.

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"skipper/internal/harness"
)

func TestBenchSnapshotWithinPaperEnvelope(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no BENCH_*.json snapshot; run `make bench` to create one")
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		rep, err := harness.ReadBenchJSON(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if rep.E1 == nil {
			t.Fatalf("%s: snapshot has no E1 latency table", path)
		}
		if rep.E1.TrackingMS >= 40 {
			t.Errorf("%s: tracking latency %.1f ms, paper envelope wants < 40 ms",
				path, rep.E1.TrackingMS)
		}
		if rep.E1.ReinitMS <= 80 || rep.E1.ReinitMS >= 120 {
			t.Errorf("%s: reinit latency %.1f ms, paper envelope wants 80–120 ms",
				path, rep.E1.ReinitMS)
		}
		if len(rep.Results) == 0 {
			t.Errorf("%s: snapshot has no benchmark results", path)
		}
		checkTraceCost(t, path, rep)
		checkDataPlane2(t, path, rep)
		checkDataPlane3(t, path, rep)
		checkServe(t, path, rep)
		checkFlightCost(t, path, rep)
		checkSpeculation(t, path, rep)
	}
}

// checkServe guards the control-plane scheduler on snapshots that carry the
// skipper-as-a-service benchmark (BENCH_6 onward, DESIGN.md §13). One op is
// one tiny in-process job through the whole Submit→queue→dispatch→run→Wait
// path; the executive work itself is ~40µs, so the ceiling — deliberately
// generous to absorb CI noise — bounds what the scheduler adds around a job
// (lock convoys, lost dispatch kicks, goroutine churn).
func checkServe(t *testing.T, path string, rep *harness.BenchReport) {
	for _, e := range rep.Results {
		if e.Name != "ServeJobThroughput" {
			continue
		}
		if e.NsPerOp > 250e6 {
			t.Errorf("%s: serve job throughput %.0f ns/job, ceiling 250 ms", path, e.NsPerOp)
		}
		return
	}
}

// checkTraceCost pins the price of the observability seam on snapshots that
// carry the paired tracing round-trip benchmarks (BENCH_4 onward): with the
// recorder disarmed the instrumented hot path must allocate no more than
// the bare scalar round trip does (2 boxed values/op — the nil-recorder
// checks are branches, not costs), and arming it must not add allocations
// either, only the fixed per-event stores.
// checkDataPlane2 guards the data-plane round-2 work on snapshots that carry
// the pipelined-itermem benchmarks (BENCH_5 onward, DESIGN.md §12):
//
//   - E5's per-op allocation budget drops from 111 to ≤ 60 after the
//     makespan-model rewrite (scratch reuse, no throwaway topology).
//   - The software-pipelined itermem loop must sustain ≥ 1.3× the
//     sequential frame rate on the blocking-grab benchmark (measured ~5×:
//     the farm runs inside the next frame's grab wait).
//   - The unix-domain transport must beat tcp on the farm round trip, and
//     both must sit under generous absolute ceilings. The issue's ≤ ½×-tcp
//     aspiration is not reachable on this class of host: a raw 32KB
//     ping-pong over a unix socketpair floors at ~8.4µs vs ~9.9µs for
//     loopback TCP (internal/exec/nettransport/floor_bench_test.go), so the
//     transports differ by the per-syscall delta, not a 2× factor — the
//     honest guard is the ordering plus ceilings with headroom for CI
//     noise.
func checkDataPlane2(t *testing.T, path string, rep *harness.BenchReport) {
	entries := map[string]harness.BenchEntry{}
	for _, e := range rep.Results {
		entries[e.Name] = e
	}
	pipOn, ok := entries["ItermemPipelined_on"]
	if !ok {
		return // pre-round-2 snapshot
	}
	pipOff, ok := entries["ItermemPipelined_off"]
	if !ok {
		t.Errorf("%s: ItermemPipelined_on present without the _off baseline", path)
		return
	}
	if pipOn.NsPerOp > pipOff.NsPerOp/1.3 {
		t.Errorf("%s: pipelined itermem frame period %.0f ns vs sequential %.0f ns; want >= 1.3x speedup",
			path, pipOn.NsPerOp, pipOff.NsPerOp)
	}
	if e5, ok := entries["E5_LoadBalancing"]; ok && e5.AllocsPerOp > 60 {
		t.Errorf("%s: E5 allocates %d/op, budget is 60 (was 111 before the makespan rewrite)",
			path, e5.AllocsPerOp)
	}
	tcp, okTCP := entries["Transport_tcp_FarmRoundTrip"]
	unix, okUnix := entries["Transport_unix_FarmRoundTrip"]
	if !okTCP || !okUnix {
		t.Errorf("%s: round-2 snapshot missing transport round trips (tcp %v, unix %v)",
			path, okTCP, okUnix)
		return
	}
	if unix.NsPerOp > tcp.NsPerOp {
		t.Errorf("%s: unix round trip %.0f ns slower than tcp %.0f ns; same-host mode must win",
			path, unix.NsPerOp, tcp.NsPerOp)
	}
	if tcp.NsPerOp > 30_000 {
		t.Errorf("%s: tcp farm round trip %.0f ns, ceiling 30µs", path, tcp.NsPerOp)
	}
	if unix.NsPerOp > 25_000 {
		t.Errorf("%s: unix farm round trip %.0f ns, ceiling 25µs", path, unix.NsPerOp)
	}
}

// checkDataPlane3 guards the data-plane round-3 work on snapshots that carry
// the shared-memory transport benchmark (BENCH_7 onward, DESIGN.md §14):
//
//   - The shm slab-ring farm round trip must beat the unix-socket one it
//     replaces on same-host deployments — the copy through the mmap'd ring
//     skips the kernel socket buffer, leaving one doorbell syscall at most —
//     and sit under a generous absolute ceiling (measured ~8.4µs vs ~14.1µs
//     unix on the CI host; the raw futex-free floor is ~7.6µs).
//   - The cache-tiled separable 3×3 dilate must hold >= 1.3x over the naive
//     9-tap loop even on one CPU (measured ~2.7x on 512²), where only
//     separability and flat row addressing help — band parallelism is extra.
//   - Cutting the itermem pipeline at every farm boundary (with the MEM read
//     sunk to its first consumer's stage) must beat the historical two-stage
//     split by >= 1.3x on the deep-chain benchmark (measured ~2.7x: the
//     frame period drops from the sum of the farm latencies to the slowest
//     stage).
func checkDataPlane3(t *testing.T, path string, rep *harness.BenchReport) {
	entries := map[string]harness.BenchEntry{}
	for _, e := range rep.Results {
		entries[e.Name] = e
	}
	shm, ok := entries["Transport_shm_FarmRoundTrip"]
	if !ok {
		return // pre-round-3 snapshot
	}
	unix, okUnix := entries["Transport_unix_FarmRoundTrip"]
	if !okUnix {
		t.Errorf("%s: Transport_shm_FarmRoundTrip present without the unix baseline", path)
		return
	}
	if shm.NsPerOp > unix.NsPerOp {
		t.Errorf("%s: shm round trip %.0f ns slower than unix %.0f ns; the ring must beat the socket",
			path, shm.NsPerOp, unix.NsPerOp)
	}
	if shm.NsPerOp > 20_000 {
		t.Errorf("%s: shm farm round trip %.0f ns, ceiling 20µs", path, shm.NsPerOp)
	}
	naive, okNaive := entries["Dilate512_naive"]
	tiled, okTiled := entries["Dilate512_tiled"]
	if !okNaive || !okTiled {
		t.Errorf("%s: round-3 snapshot missing morphology pair (naive %v, tiled %v)",
			path, okNaive, okTiled)
	} else if tiled.NsPerOp > naive.NsPerOp/1.3 {
		t.Errorf("%s: tiled dilate %.0f ns vs naive %.0f ns; want >= 1.3x speedup",
			path, tiled.NsPerOp, naive.NsPerOp)
	}
	d2, okD2 := entries["ItermemDepth2"]
	full, okFull := entries["ItermemDepthFull"]
	if !okD2 || !okFull {
		t.Errorf("%s: round-3 snapshot missing pipeline-depth pair (depth2 %v, full %v)",
			path, okD2, okFull)
	} else if full.NsPerOp > d2.NsPerOp/1.3 {
		t.Errorf("%s: full-depth itermem frame period %.0f ns vs two-stage %.0f ns; want >= 1.3x speedup",
			path, full.NsPerOp, d2.NsPerOp)
	}
}

// checkFlightCost guards the observability round-2 work on snapshots that
// carry the paired shm tracing round trips (BENCH_8 onward, DESIGN.md §15):
// the always-on flight recorder every fleet worker arms must cost at most a
// couple of allocations and a thin latency margin over the untraced shm
// round trip — 10% plus a 2µs noise floor so the guard bounds the recorder,
// not the CI host's scheduling jitter.
func checkFlightCost(t *testing.T, path string, rep *harness.BenchReport) {
	entries := map[string]harness.BenchEntry{}
	for _, e := range rep.Results {
		entries[e.Name] = e
	}
	on, okOn := entries["Trace_shm_FarmRoundTrip_on"]
	if !okOn {
		return // pre-round-2 observability snapshot
	}
	off, okOff := entries["Trace_shm_FarmRoundTrip_off"]
	if !okOff {
		t.Errorf("%s: Trace_shm_FarmRoundTrip_on present without the _off baseline", path)
		return
	}
	if on.AllocsPerOp > off.AllocsPerOp+2 {
		t.Errorf("%s: armed shm round trip allocates %d/op vs %d/op disarmed; the recorder's budget is 2",
			path, on.AllocsPerOp, off.AllocsPerOp)
	}
	ceiling := 1.10*off.NsPerOp + 2_000
	if on.NsPerOp > ceiling {
		t.Errorf("%s: armed shm round trip %.0f ns vs %.0f ns disarmed; want <= 10%% + 2µs overhead",
			path, on.NsPerOp, off.NsPerOp)
	}
}

// checkSpeculation guards speculative execution on snapshots that carry the
// straggler-fleet farm pair (BENCH_9 onward, DESIGN.md §16): one ring(8)
// worker's replies are scripted 10x slower than the speculation threshold,
// so with speculation off every iteration gates on the straggler while on
// the master duplicates the stalled task onto an idle worker. Measured ~8x
// on the CI host (the period drops from the straggler's delay towards the
// healthy farm's); the guard asks for 1.5x so scheduler jitter on a loaded
// runner cannot flake it while a speculation regression still fails tier-1.
func checkSpeculation(t *testing.T, path string, rep *harness.BenchReport) {
	entries := map[string]harness.BenchEntry{}
	for _, e := range rep.Results {
		entries[e.Name] = e
	}
	on, ok := entries["StragglerFarm_on"]
	if !ok {
		return // pre-speculation snapshot
	}
	off, okOff := entries["StragglerFarm_off"]
	if !okOff {
		t.Errorf("%s: StragglerFarm_on present without the _off baseline", path)
		return
	}
	if on.NsPerOp > off.NsPerOp/1.5 {
		t.Errorf("%s: speculative straggler farm period %.0f ns vs %.0f ns without; want >= 1.5x speedup",
			path, on.NsPerOp, off.NsPerOp)
	}
}

func checkTraceCost(t *testing.T, path string, rep *harness.BenchReport) {
	entries := map[string]harness.BenchEntry{}
	for _, e := range rep.Results {
		entries[e.Name] = e
	}
	off, okOff := entries["Trace_mem_FarmRoundTrip_off"]
	on, okOn := entries["Trace_mem_FarmRoundTrip_on"]
	if !okOff || !okOn {
		return // pre-observability snapshot
	}
	if off.AllocsPerOp > 2 {
		t.Errorf("%s: untraced round trip allocates %d/op, want <= 2 (disabled tracing must be free)",
			path, off.AllocsPerOp)
	}
	if on.AllocsPerOp > off.AllocsPerOp {
		t.Errorf("%s: tracing adds allocations (%d/op on vs %d/op off); events must be recorded in place",
			path, on.AllocsPerOp, off.AllocsPerOp)
	}
}
